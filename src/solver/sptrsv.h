/**
 * @file
 * Reference sparse triangular solve (SpTRSV), the second dominant PCG
 * kernel (Sec II-A, Fig 4/5). Forward substitution solves Lx = b for
 * lower-triangular L; backward substitution solves Ux = b. The
 * transpose variant solves L^T x = b directly from L's storage.
 */
#ifndef AZUL_SOLVER_SPTRSV_H_
#define AZUL_SOLVER_SPTRSV_H_

#include "solver/vector_ops.h"
#include "sparse/csr.h"

namespace azul {

/**
 * Solves L x = b by forward substitution. L must be lower triangular
 * with a full nonzero diagonal.
 */
Vector SpTRSVLower(const CsrMatrix& l, const Vector& b);

/** Solves U x = b by backward substitution (U upper triangular). */
Vector SpTRSVUpper(const CsrMatrix& u, const Vector& b);

/**
 * Solves L^T x = b given lower-triangular L, without materializing
 * L^T (column sweep from the last row).
 */
Vector SpTRSVLowerTranspose(const CsrMatrix& l, const Vector& b);

/** FLOP count of one SpTRSV: 2 per off-diagonal nonzero + 1 per row. */
inline double
SpTRSVFlops(const CsrMatrix& l)
{
    return 2.0 * static_cast<double>(l.nnz() - l.rows()) +
           static_cast<double>(l.rows());
}

} // namespace azul

#endif // AZUL_SOLVER_SPTRSV_H_
