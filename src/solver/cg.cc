#include "solver/cg.h"

#include "solver/spmv.h"

namespace azul {

SolveResult
ConjugateGradients(const CsrMatrix& a, const Vector& b, double tol,
                   Index max_iters)
{
    AZUL_CHECK(a.rows() == a.cols());
    AZUL_CHECK(static_cast<Index>(b.size()) == a.rows());
    const Index n = a.rows();
    const double vec_flops = static_cast<double>(n);

    SolveResult res;
    res.x = ZeroVector(n);
    Vector r = b;
    Vector p = r;
    double rr = Dot(r, r);
    res.flops.vector_ops += 2.0 * vec_flops;

    while (res.iterations < max_iters) {
        res.residual_norm = std::sqrt(rr);
        if (res.residual_norm <= tol) {
            res.converged = true;
            return res;
        }
        const Vector ap = SpMV(a, p);
        res.flops.spmv += SpMVFlops(a);
        const double p_ap = Dot(p, ap);
        const double alpha = rr / p_ap;
        Axpy(alpha, p, res.x);
        Axpy(-alpha, ap, r);
        const double rr_new = Dot(r, r);
        const double beta = rr_new / rr;
        Xpby(r, beta, p);
        rr = rr_new;
        res.flops.vector_ops += 10.0 * vec_flops;
        ++res.iterations;
    }
    res.residual_norm = std::sqrt(rr);
    res.converged = res.residual_norm <= tol;
    return res;
}

} // namespace azul
