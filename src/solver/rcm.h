/**
 * @file
 * Reverse Cuthill-McKee ordering. The classic bandwidth-reducing
 * permutation — the natural ablation counterpart to the paper's
 * graph-coloring preprocessing: RCM improves locality (which helps
 * position/coordinate-based mappings) but, unlike coloring, it does
 * NOT shorten SpTRSV dependence chains.
 */
#ifndef AZUL_SOLVER_RCM_H_
#define AZUL_SOLVER_RCM_H_

#include "sparse/csr.h"
#include "sparse/permute.h"

namespace azul {

/**
 * Computes the reverse Cuthill-McKee permutation of symmetric matrix
 * a: BFS from a minimum-degree peripheral vertex per connected
 * component, neighbors visited in ascending-degree order, final order
 * reversed.
 */
Permutation RcmPermutation(const CsrMatrix& a);

} // namespace azul

#endif // AZUL_SOLVER_RCM_H_
