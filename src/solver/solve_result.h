/**
 * @file
 * Common result type for the reference iterative solvers, including
 * the per-kernel FLOP accounting the evaluation harness uses to turn
 * runtimes into GFLOP/s.
 */
#ifndef AZUL_SOLVER_SOLVE_RESULT_H_
#define AZUL_SOLVER_SOLVE_RESULT_H_

#include "solver/vector_ops.h"

namespace azul {

/** FLOPs broken down by kernel (matches Fig 3/22 categories). */
struct KernelFlops {
    double spmv = 0.0;
    double sptrsv = 0.0;
    double vector_ops = 0.0;

    double total() const { return spmv + sptrsv + vector_ops; }
};

/** Result of a reference solver run. */
struct SolveResult {
    Vector x;
    bool converged = false;
    Index iterations = 0;
    double residual_norm = 0.0;
    KernelFlops flops;
};

} // namespace azul

#endif // AZUL_SOLVER_SOLVE_RESULT_H_
