/**
 * @file
 * BiCGStab solver (Sec II-B, Table II) — handles nonsymmetric systems
 * with the same SpMV (+ optional SpTRSV preconditioner) kernel mix as
 * PCG, demonstrating the generality of the kernels Azul accelerates.
 */
#ifndef AZUL_SOLVER_BICGSTAB_H_
#define AZUL_SOLVER_BICGSTAB_H_

#include "solver/preconditioner.h"
#include "solver/solve_result.h"
#include "sparse/csr.h"

namespace azul {

/**
 * Solves A x = b by preconditioned BiCGStab.
 *
 * @param a         system matrix (need not be symmetric).
 * @param b         right-hand side.
 * @param m         preconditioner applied as right preconditioning.
 * @param tol       convergence threshold on ||r||.
 * @param max_iters iteration cap.
 */
SolveResult BiCgStab(const CsrMatrix& a, const Vector& b,
                     const Preconditioner& m, double tol = 1e-10,
                     Index max_iters = 10000);

} // namespace azul

#endif // AZUL_SOLVER_BICGSTAB_H_
