#include "solver/ic0.h"

#include <cmath>
#include <unordered_map>

#include "sparse/triangle.h"

namespace azul {

CsrMatrix
IncompleteCholesky(const CsrMatrix& a)
{
    AZUL_CHECK(a.rows() == a.cols());
    CsrMatrix l = LowerTriangle(a);
    std::vector<double>& vals = l.mutable_vals();
    const std::vector<Index>& col_idx = l.col_idx();
    const Index n = l.rows();

    // Position of each row's diagonal entry within the CSR arrays.
    // Because rows are sorted and lower triangular, the diagonal is
    // the last entry of each row.
    std::vector<Index> diag_pos(static_cast<std::size_t>(n));
    for (Index r = 0; r < n; ++r) {
        AZUL_CHECK_MSG(l.RowNnz(r) > 0 &&
                           col_idx[l.RowEnd(r) - 1] == r,
                       "IC(0): missing diagonal at row " << r);
        diag_pos[static_cast<std::size_t>(r)] = l.RowEnd(r) - 1;
    }

    // Up-looking IC(0): for each row i, in ascending column order
    // finalize
    //   L[i][k] = (A[i][k] - sum_{j<k} L[i][j] * L[k][j]) / L[k][k]
    // where the sum ranges over the pattern intersection of rows i and
    // k, then
    //   L[i][i] = sqrt(A[i][i] - sum_{j<i} L[i][j]^2).
    //
    // row_val maps column -> position in row i for O(1) intersection
    // probes while sweeping row k.
    std::unordered_map<Index, Index> row_pos;
    for (Index i = 0; i < n; ++i) {
        row_pos.clear();
        for (Index kk = l.RowBegin(i); kk < l.RowEnd(i); ++kk) {
            row_pos.emplace(col_idx[kk], kk);
        }
        for (Index kk = l.RowBegin(i); kk < l.RowEnd(i); ++kk) {
            const Index k = col_idx[kk];
            if (k == i) {
                break; // diagonal handled below
            }
            double acc = vals[static_cast<std::size_t>(kk)];
            // Sweep row k (all columns j <= k); for j < k in the
            // intersection, subtract L[i][j] * L[k][j]. L[i][j] is
            // final because j < k and we finalize in column order.
            for (Index kj = l.RowBegin(k); kj < l.RowEnd(k) - 1; ++kj) {
                const Index j = col_idx[kj];
                const auto it = row_pos.find(j);
                if (it != row_pos.end()) {
                    acc -= vals[static_cast<std::size_t>(it->second)] *
                           vals[static_cast<std::size_t>(kj)];
                }
            }
            const double lkk = vals[static_cast<std::size_t>(
                diag_pos[static_cast<std::size_t>(k)])];
            vals[static_cast<std::size_t>(kk)] = acc / lkk;
        }
        // Diagonal.
        const Index dpos = diag_pos[static_cast<std::size_t>(i)];
        double acc = vals[static_cast<std::size_t>(dpos)];
        for (Index kk = l.RowBegin(i); kk < dpos; ++kk) {
            const double lij = vals[static_cast<std::size_t>(kk)];
            acc -= lij * lij;
        }
        AZUL_CHECK_MSG(acc > 0.0,
                       "IC(0) breakdown: non-positive pivot " << acc
                           << " at row " << i);
        vals[static_cast<std::size_t>(dpos)] = std::sqrt(acc);
    }
    return l;
}

} // namespace azul
