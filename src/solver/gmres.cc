#include "solver/gmres.h"

#include <cmath>

#include "solver/spmv.h"

namespace azul {

SolveResult
Gmres(const CsrMatrix& a, const Vector& b, const Preconditioner& m,
      Index restart, double tol, Index max_iters)
{
    AZUL_CHECK(a.rows() == a.cols());
    AZUL_CHECK(static_cast<Index>(b.size()) == a.rows());
    AZUL_CHECK(restart >= 1);
    const Index n = a.rows();
    const double vec_flops = static_cast<double>(n);
    const bool preconditioned =
        m.kind() != PreconditionerKind::kIdentity;
    const auto mi = static_cast<std::size_t>(restart);

    SolveResult res;
    res.x = ZeroVector(n);

    // Krylov basis and Hessenberg matrix (column-major, (m+1) x m).
    std::vector<Vector> basis;
    std::vector<std::vector<double>> h(
        mi, std::vector<double>(mi + 1, 0.0));
    std::vector<double> cs(mi, 0.0);
    std::vector<double> sn(mi, 0.0);
    std::vector<double> g(mi + 1, 0.0); // rotated rhs of the LS problem

    while (res.iterations < max_iters) {
        // Residual at the cycle start: r = b - A x.
        Vector r = SpMV(a, res.x);
        res.flops.spmv += SpMVFlops(a);
        for (std::size_t i = 0; i < r.size(); ++i) {
            r[i] = b[i] - r[i];
        }
        const double beta = Norm2(r);
        res.flops.vector_ops += 3.0 * vec_flops;
        res.residual_norm = beta;
        if (beta <= tol) {
            res.converged = true;
            return res;
        }

        basis.clear();
        Scale(r, 1.0 / beta);
        basis.push_back(std::move(r));
        std::fill(g.begin(), g.end(), 0.0);
        g[0] = beta;

        std::size_t k = 0; // columns completed this cycle
        for (; k < mi && res.iterations < max_iters;
             ++k, ++res.iterations) {
            // w = A M^{-1} v_k  (right preconditioning).
            const Vector z = m.Apply(basis[k]);
            if (preconditioned) {
                res.flops.sptrsv += m.ApplyFlops();
            }
            Vector w = SpMV(a, z);
            res.flops.spmv += SpMVFlops(a);

            // Modified Gram-Schmidt against the basis.
            for (std::size_t i = 0; i <= k; ++i) {
                h[k][i] = Dot(w, basis[i]);
                Axpy(-h[k][i], basis[i], w);
                res.flops.vector_ops += 4.0 * vec_flops;
            }
            h[k][k + 1] = Norm2(w);
            const double w_norm = h[k][k + 1];
            res.flops.vector_ops += 2.0 * vec_flops;

            // Apply existing Givens rotations to the new column.
            for (std::size_t i = 0; i < k; ++i) {
                const double tmp =
                    cs[i] * h[k][i] + sn[i] * h[k][i + 1];
                h[k][i + 1] =
                    -sn[i] * h[k][i] + cs[i] * h[k][i + 1];
                h[k][i] = tmp;
            }
            // New rotation to annihilate h[k][k+1].
            const double denom = std::hypot(h[k][k], h[k][k + 1]);
            if (denom == 0.0) {
                // Lucky breakdown: exact solution in the subspace.
                ++k;
                ++res.iterations;
                break;
            }
            cs[k] = h[k][k] / denom;
            sn[k] = h[k][k + 1] / denom;
            h[k][k] = denom;
            h[k][k + 1] = 0.0;
            g[k + 1] = -sn[k] * g[k];
            g[k] = cs[k] * g[k];

            if (std::abs(g[k + 1]) <= tol) {
                ++k;
                ++res.iterations;
                break;
            }
            if (w_norm == 0.0) {
                ++k;
                ++res.iterations;
                break; // invariant subspace reached
            }
            Scale(w, 1.0 / w_norm);
            basis.push_back(std::move(w));
        }

        // Back-substitute y from the triangular LS system and update
        // x += M^{-1} (V_k y).
        std::vector<double> y(k, 0.0);
        for (std::size_t i = k; i-- > 0;) {
            double acc = g[i];
            for (std::size_t j = i + 1; j < k; ++j) {
                acc -= h[j][i] * y[j];
            }
            y[i] = acc / h[i][i];
        }
        Vector update = ZeroVector(n);
        for (std::size_t i = 0; i < k; ++i) {
            Axpy(y[i], basis[i], update);
            res.flops.vector_ops += 2.0 * vec_flops;
        }
        const Vector preconditioned_update = m.Apply(update);
        if (preconditioned) {
            res.flops.sptrsv += m.ApplyFlops();
        }
        Axpy(1.0, preconditioned_update, res.x);
        res.flops.vector_ops += 2.0 * vec_flops;
    }

    // Final residual check.
    Vector r = SpMV(a, res.x);
    for (std::size_t i = 0; i < r.size(); ++i) {
        r[i] = b[i] - r[i];
    }
    res.residual_norm = Norm2(r);
    res.converged = res.residual_norm <= tol;
    return res;
}

} // namespace azul
