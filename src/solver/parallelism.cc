#include "solver/parallelism.h"

#include <algorithm>
#include <cmath>

namespace azul {

namespace {

double
Log2Ceil(Index x)
{
    if (x <= 1) {
        return 0.0;
    }
    return std::ceil(std::log2(static_cast<double>(x)));
}

} // namespace

ParallelismReport
AnalyzeSpMVParallelism(const CsrMatrix& a)
{
    ParallelismReport rep;
    rep.total_ops = 2.0 * static_cast<double>(a.nnz());
    Index max_row = 0;
    for (Index r = 0; r < a.rows(); ++r) {
        max_row = std::max(max_row, a.RowNnz(r));
    }
    rep.critical_path = 1.0 + Log2Ceil(max_row);
    rep.parallelism =
        rep.critical_path > 0.0 ? rep.total_ops / rep.critical_path : 0.0;
    return rep;
}

ParallelismReport
AnalyzeSpTRSVParallelism(const CsrMatrix& l)
{
    AZUL_CHECK(l.rows() == l.cols());
    ParallelismReport rep;
    // Work: one multiply+add per off-diagonal nonzero, one divide per
    // row.
    rep.total_ops = 2.0 * static_cast<double>(l.nnz() - l.rows()) +
                    static_cast<double>(l.rows());

    // Longest weighted dependence chain. depth[i] is the earliest time
    // x[i] can be final.
    std::vector<double> depth(static_cast<std::size_t>(l.rows()), 0.0);
    double critical = 0.0;
    for (Index r = 0; r < l.rows(); ++r) {
        double ready = 0.0;
        for (Index k = l.RowBegin(r); k < l.RowEnd(r); ++k) {
            const Index c = l.col_idx()[k];
            AZUL_CHECK_MSG(c <= r, "not lower triangular");
            if (c < r) {
                ready = std::max(ready,
                                 depth[static_cast<std::size_t>(c)]);
            }
        }
        // After the last dependency: multiply its contribution, reduce
        // the row (log depth), divide by the diagonal.
        const double row_cost = 1.0 + Log2Ceil(l.RowNnz(r) - 1) + 1.0;
        depth[static_cast<std::size_t>(r)] = ready + row_cost;
        critical = std::max(critical,
                            depth[static_cast<std::size_t>(r)]);
    }
    rep.critical_path = std::max(critical, 1.0);
    rep.parallelism = rep.total_ops / rep.critical_path;
    return rep;
}

} // namespace azul
