#include "solver/coloring.h"

#include <algorithm>
#include <numeric>

namespace azul {

Coloring
GreedyColoring(const CsrMatrix& a, ColoringStrategy strategy)
{
    AZUL_CHECK(a.rows() == a.cols());
    const Index n = a.rows();
    std::vector<Index> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), Index{0});
    if (strategy == ColoringStrategy::kLargestFirst) {
        std::stable_sort(order.begin(), order.end(),
                         [&a](Index x, Index y) {
                             return a.RowNnz(x) > a.RowNnz(y);
                         });
    }

    Coloring coloring;
    coloring.color_of.assign(static_cast<std::size_t>(n), Index{-1});
    std::vector<Index> neighbor_colors; // scratch, reset per vertex
    std::vector<char> used;
    for (Index v : order) {
        neighbor_colors.clear();
        for (Index k = a.RowBegin(v); k < a.RowEnd(v); ++k) {
            const Index u = a.col_idx()[k];
            if (u == v) {
                continue;
            }
            const Index c = coloring.color_of[static_cast<std::size_t>(u)];
            if (c >= 0) {
                neighbor_colors.push_back(c);
            }
        }
        used.assign(neighbor_colors.size() + 1, 0);
        for (Index c : neighbor_colors) {
            if (c < static_cast<Index>(used.size())) {
                used[static_cast<std::size_t>(c)] = 1;
            }
        }
        Index chosen = 0;
        while (used[static_cast<std::size_t>(chosen)]) {
            ++chosen;
        }
        coloring.color_of[static_cast<std::size_t>(v)] = chosen;
        coloring.num_colors = std::max(coloring.num_colors, chosen + 1);
    }
    return coloring;
}

Permutation
ColoringPermutation(const Coloring& coloring)
{
    const Index n = static_cast<Index>(coloring.color_of.size());
    std::vector<Index> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), Index{0});
    std::stable_sort(order.begin(), order.end(), [&coloring](Index x,
                                                             Index y) {
        return coloring.color_of[static_cast<std::size_t>(x)] <
               coloring.color_of[static_cast<std::size_t>(y)];
    });
    return Permutation::FromNewToOld(std::move(order));
}

ColoredMatrix
ColorAndPermute(const CsrMatrix& a, ColoringStrategy strategy)
{
    const Coloring coloring = GreedyColoring(a, strategy);
    ColoredMatrix out;
    out.perm = ColoringPermutation(coloring);
    out.a = PermuteSymmetric(a, out.perm);
    out.num_colors = coloring.num_colors;
    return out;
}

bool
IsValidColoring(const CsrMatrix& a, const Coloring& coloring)
{
    for (Index r = 0; r < a.rows(); ++r) {
        for (Index k = a.RowBegin(r); k < a.RowEnd(r); ++k) {
            const Index c = a.col_idx()[k];
            if (c != r &&
                coloring.color_of[static_cast<std::size_t>(c)] ==
                    coloring.color_of[static_cast<std::size_t>(r)]) {
                return false;
            }
        }
    }
    return true;
}

} // namespace azul
