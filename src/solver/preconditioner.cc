#include "solver/preconditioner.h"

#include <cmath>

#include "solver/ic0.h"
#include "solver/sptrsv.h"
#include "sparse/triangle.h"

namespace azul {

std::string
PreconditionerKindName(PreconditionerKind kind)
{
    switch (kind) {
      case PreconditionerKind::kIdentity: return "none";
      case PreconditionerKind::kJacobi: return "jacobi";
      case PreconditionerKind::kSymmetricGaussSeidel: return "symgs";
      case PreconditionerKind::kSsor: return "ssor";
      case PreconditionerKind::kIncompleteCholesky: return "ic0";
    }
    return "?";
}

bool
ParsePreconditionerKind(const std::string& text,
                        PreconditionerKind& out)
{
    for (PreconditionerKind kind :
         {PreconditionerKind::kIdentity, PreconditionerKind::kJacobi,
          PreconditionerKind::kSymmetricGaussSeidel,
          PreconditionerKind::kSsor,
          PreconditionerKind::kIncompleteCholesky}) {
        if (text == PreconditionerKindName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

namespace {

class IdentityPreconditioner final : public Preconditioner {
  public:
    Vector Apply(const Vector& r) const override { return r; }
    PreconditionerKind
    kind() const override
    {
        return PreconditionerKind::kIdentity;
    }
    double ApplyFlops() const override { return 0.0; }
};

class JacobiPreconditioner final : public Preconditioner {
  public:
    explicit JacobiPreconditioner(const CsrMatrix& a)
    {
        inv_diag_.reserve(static_cast<std::size_t>(a.rows()));
        for (Index i = 0; i < a.rows(); ++i) {
            const double d = a.At(i, i);
            AZUL_CHECK_MSG(d != 0.0, "Jacobi: zero diagonal at " << i);
            inv_diag_.push_back(1.0 / d);
        }
    }

    Vector
    Apply(const Vector& r) const override
    {
        AZUL_CHECK(r.size() == inv_diag_.size());
        Vector z(r.size());
        for (std::size_t i = 0; i < r.size(); ++i) {
            z[i] = r[i] * inv_diag_[i];
        }
        return z;
    }

    PreconditionerKind
    kind() const override
    {
        return PreconditionerKind::kJacobi;
    }

    double
    ApplyFlops() const override
    {
        return static_cast<double>(inv_diag_.size());
    }

  private:
    std::vector<double> inv_diag_;
};

/**
 * Preconditioner of the form M = L L^T applied via two triangular
 * solves. Covers IC(0), symmetric Gauss-Seidel and SSOR (the latter
 * two via the scaled factor L = (D/w + Lo) (D/w)^{-1/2} * sqrt(c)).
 */
class FactoredPreconditioner final : public Preconditioner {
  public:
    FactoredPreconditioner(PreconditionerKind kind, CsrMatrix l)
        : kind_(kind), l_(std::move(l))
    {
    }

    Vector
    Apply(const Vector& r) const override
    {
        return SpTRSVLowerTranspose(l_, SpTRSVLower(l_, r));
    }

    PreconditionerKind kind() const override { return kind_; }

    const CsrMatrix* lower_factor() const override { return &l_; }

    double
    ApplyFlops() const override
    {
        return 2.0 * SpTRSVFlops(l_);
    }

  private:
    PreconditionerKind kind_;
    CsrMatrix l_;
};

/**
 * Builds the SSOR lower factor L = sqrt(c) * (D/w + Lo) * (D/w)^{-1/2}
 * with c = 1 / (w * (2 - w)); w = 1 gives symmetric Gauss-Seidel.
 */
CsrMatrix
SsorFactor(const CsrMatrix& a, double omega)
{
    AZUL_CHECK_MSG(omega > 0.0 && omega < 2.0,
                   "SSOR requires omega in (0, 2), got " << omega);
    const double c = 1.0 / (omega * (2.0 - omega));
    const double sqrt_c = std::sqrt(c);
    CsrMatrix l = LowerTriangle(a);
    // Replace the diagonal entries with d/w, then scale column j by
    // (d_j / w)^{-1/2} and everything by sqrt(c).
    std::vector<double> dw(static_cast<std::size_t>(a.rows()));
    for (Index i = 0; i < a.rows(); ++i) {
        const double d = a.At(i, i);
        AZUL_CHECK_MSG(d > 0.0, "SSOR: non-positive diagonal at " << i);
        dw[static_cast<std::size_t>(i)] = d / omega;
    }
    std::vector<double>& vals = l.mutable_vals();
    for (Index r = 0; r < l.rows(); ++r) {
        for (Index k = l.RowBegin(r); k < l.RowEnd(r); ++k) {
            const Index cidx = l.col_idx()[k];
            double v = vals[static_cast<std::size_t>(k)];
            if (cidx == r) {
                v = dw[static_cast<std::size_t>(r)];
            }
            v *= sqrt_c /
                 std::sqrt(dw[static_cast<std::size_t>(cidx)]);
            vals[static_cast<std::size_t>(k)] = v;
        }
    }
    return l;
}

} // namespace

std::unique_ptr<Preconditioner>
MakePreconditioner(PreconditionerKind kind, const CsrMatrix& a,
                   double ssor_omega)
{
    switch (kind) {
      case PreconditionerKind::kIdentity:
        return std::make_unique<IdentityPreconditioner>();
      case PreconditionerKind::kJacobi:
        return std::make_unique<JacobiPreconditioner>(a);
      case PreconditionerKind::kSymmetricGaussSeidel:
        return std::make_unique<FactoredPreconditioner>(kind,
                                                        SsorFactor(a, 1.0));
      case PreconditionerKind::kSsor:
        return std::make_unique<FactoredPreconditioner>(
            kind, SsorFactor(a, ssor_omega));
      case PreconditionerKind::kIncompleteCholesky:
        return std::make_unique<FactoredPreconditioner>(
            kind, IncompleteCholesky(a));
    }
    throw AzulError("unknown preconditioner kind");
}

} // namespace azul
