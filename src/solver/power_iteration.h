/**
 * @file
 * Power iteration (Table II) — the simplest SpMV-only iterative
 * algorithm, used as an extra workload exercising Azul's SpMV path.
 */
#ifndef AZUL_SOLVER_POWER_ITERATION_H_
#define AZUL_SOLVER_POWER_ITERATION_H_

#include "solver/vector_ops.h"
#include "sparse/csr.h"

namespace azul {

/** Result of power iteration. */
struct PowerIterationResult {
    double eigenvalue = 0.0;
    Vector eigenvector;
    Index iterations = 0;
    bool converged = false;
};

/**
 * Estimates the dominant eigenpair of a by power iteration starting
 * from a deterministic pseudo-random vector.
 */
PowerIterationResult PowerIteration(const CsrMatrix& a, double tol = 1e-8,
                                    Index max_iters = 5000);

} // namespace azul

#endif // AZUL_SOLVER_POWER_ITERATION_H_
