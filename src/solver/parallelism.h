/**
 * @file
 * Available-parallelism analysis (Table I of the paper): total work
 * divided by critical-path length, assuming single-cycle operations
 * and ignoring data-movement latency — exactly the paper's estimate.
 */
#ifndef AZUL_SOLVER_PARALLELISM_H_
#define AZUL_SOLVER_PARALLELISM_H_

#include "sparse/csr.h"

namespace azul {

/** Work / critical-path summary for one kernel. */
struct ParallelismReport {
    double total_ops = 0.0;
    double critical_path = 0.0;
    double parallelism = 0.0; //!< total_ops / critical_path
};

/**
 * SpMV parallelism: every product is independent; the critical path is
 * the balanced reduction tree of the densest row (1 multiply +
 * ceil(log2(row nnz)) adds).
 */
ParallelismReport AnalyzeSpMVParallelism(const CsrMatrix& a);

/**
 * SpTRSV parallelism on lower-triangular L: the critical path is the
 * longest weighted dependence chain, where solving row i after its
 * last dependency costs 1 multiply + a log-depth reduction of the
 * row's contributions + 1 divide.
 */
ParallelismReport AnalyzeSpTRSVParallelism(const CsrMatrix& l);

} // namespace azul

#endif // AZUL_SOLVER_PARALLELISM_H_
