#include "solver/spmv.h"

namespace azul {

Vector
SpMV(const CsrMatrix& a, const Vector& x)
{
    Vector y = ZeroVector(a.rows());
    SpMVAccumulate(a, x, y);
    return y;
}

void
SpMVAccumulate(const CsrMatrix& a, const Vector& x, Vector& y)
{
    AZUL_CHECK(static_cast<Index>(x.size()) == a.cols());
    AZUL_CHECK(static_cast<Index>(y.size()) == a.rows());
    for (Index r = 0; r < a.rows(); ++r) {
        double acc = y[static_cast<std::size_t>(r)];
        for (Index k = a.RowBegin(r); k < a.RowEnd(r); ++k) {
            acc += a.vals()[k] *
                   x[static_cast<std::size_t>(a.col_idx()[k])];
        }
        y[static_cast<std::size_t>(r)] = acc;
    }
}

Vector
SpMVTranspose(const CsrMatrix& a, const Vector& x)
{
    AZUL_CHECK(static_cast<Index>(x.size()) == a.rows());
    Vector y = ZeroVector(a.cols());
    for (Index r = 0; r < a.rows(); ++r) {
        const double xr = x[static_cast<std::size_t>(r)];
        for (Index k = a.RowBegin(r); k < a.RowEnd(r); ++k) {
            y[static_cast<std::size_t>(a.col_idx()[k])] +=
                a.vals()[k] * xr;
        }
    }
    return y;
}

} // namespace azul
