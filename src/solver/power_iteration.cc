#include "solver/power_iteration.h"

#include <cmath>

#include "solver/spmv.h"
#include "util/rng.h"

namespace azul {

PowerIterationResult
PowerIteration(const CsrMatrix& a, double tol, Index max_iters)
{
    AZUL_CHECK(a.rows() == a.cols());
    AZUL_CHECK(a.rows() > 0);
    Rng rng(17);
    PowerIterationResult res;
    Vector v(static_cast<std::size_t>(a.rows()));
    for (double& x : v) {
        x = rng.UniformDouble(-1.0, 1.0);
    }
    Scale(v, 1.0 / Norm2(v));

    double lambda_old = 0.0;
    while (res.iterations < max_iters) {
        Vector av = SpMV(a, v);
        const double lambda = Dot(v, av);
        const double norm = Norm2(av);
        AZUL_CHECK_MSG(norm > 0.0, "power iteration hit the null space");
        Scale(av, 1.0 / norm);
        v = std::move(av);
        ++res.iterations;
        if (std::abs(lambda - lambda_old) <=
            tol * std::max(1.0, std::abs(lambda))) {
            res.converged = true;
            res.eigenvalue = lambda;
            res.eigenvector = v;
            return res;
        }
        lambda_old = lambda;
    }
    res.eigenvalue = lambda_old;
    res.eigenvector = v;
    return res;
}

} // namespace azul
