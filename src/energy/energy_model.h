/**
 * @file
 * Power model (Sec VI-E, Fig 24). Combines per-event energies — the
 * paper's CACTI-derived 10.9 pJ per 96-bit SRAM access, synthesized
 * PE op energy, DSENT-derived per-hop link energy — with activity
 * factors from simulation, plus leakage.
 */
#ifndef AZUL_ENERGY_ENERGY_MODEL_H_
#define AZUL_ENERGY_ENERGY_MODEL_H_

#include "sim/config.h"
#include "sim/sim_stats.h"

namespace azul {

/** Per-event energies at 7nm (paper-calibrated). */
struct EnergyParams {
    double sram_read_pj = 10.9;  //!< per 96-bit read (paper, CACTI)
    double sram_write_pj = 12.0; //!< per 96-bit write
    double fp_op_pj = 4.5;       //!< FP64 FMAC datapath + control
    double noc_hop_pj = 2.6;     //!< per flit-hop (router + link)
    double leakage_mw_per_tile = 3.5;
};

/** Power breakdown in watts (Fig 24 categories). */
struct PowerBreakdown {
    double sram_w = 0.0;
    double compute_w = 0.0;
    double noc_w = 0.0;
    double leakage_w = 0.0;

    double
    total() const
    {
        return sram_w + compute_w + noc_w + leakage_w;
    }
};

/**
 * Average power over a simulated interval: event counts from `stats`
 * over `stats.cycles` at the configured clock.
 */
PowerBreakdown ComputePower(const SimStats& stats, const SimConfig& cfg,
                            const EnergyParams& params = {});

/** Total energy in joules over the simulated interval. */
double ComputeEnergyJoules(const SimStats& stats, const SimConfig& cfg,
                           const EnergyParams& params = {});

} // namespace azul

#endif // AZUL_ENERGY_ENERGY_MODEL_H_
