#include "energy/area_model.h"

namespace azul {

AreaBreakdown
ComputeArea(const SimConfig& cfg, const AreaParams& params)
{
    AreaBreakdown out;
    const double tiles = static_cast<double>(cfg.num_tiles());
    out.pes_mm2 = tiles * params.pe_mm2;
    out.routers_mm2 = tiles * params.router_mm2;
    const double sram_mb =
        tiles * (cfg.data_sram_kb + cfg.accum_sram_kb) / 1024.0;
    out.srams_mm2 = sram_mb / params.sram_mb_per_mm2;
    out.io_mm2 = params.io_mm2;
    return out;
}

} // namespace azul
