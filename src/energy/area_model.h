/**
 * @file
 * Area model (Table V): per-component 7nm areas — synthesized PE,
 * DSENT router, 3.75 MB/mm² SRAM macros, and an HBM2e-PHY-sized I/O
 * block.
 */
#ifndef AZUL_ENERGY_AREA_MODEL_H_
#define AZUL_ENERGY_AREA_MODEL_H_

#include "sim/config.h"

namespace azul {

/** Per-component 7nm area parameters (Table V). */
struct AreaParams {
    double pe_mm2 = 0.0043;
    double router_mm2 = 0.0016;
    double sram_mb_per_mm2 = 3.75;
    double io_mm2 = 15.0;
};

/** Area breakdown in mm² (Table V rows). */
struct AreaBreakdown {
    double pes_mm2 = 0.0;
    double routers_mm2 = 0.0;
    double srams_mm2 = 0.0;
    double io_mm2 = 0.0;

    double
    total() const
    {
        return pes_mm2 + routers_mm2 + srams_mm2 + io_mm2;
    }
};

/** Computes the area of a machine configuration. */
AreaBreakdown ComputeArea(const SimConfig& cfg,
                          const AreaParams& params = {});

} // namespace azul

#endif // AZUL_ENERGY_AREA_MODEL_H_
