#include "energy/energy_model.h"

namespace azul {

double
ComputeEnergyJoules(const SimStats& stats, const SimConfig& cfg,
                    const EnergyParams& params)
{
    const PowerBreakdown p = ComputePower(stats, cfg, params);
    const double seconds =
        static_cast<double>(stats.cycles) / (cfg.clock_ghz * 1e9);
    return p.total() * seconds;
}

PowerBreakdown
ComputePower(const SimStats& stats, const SimConfig& cfg,
             const EnergyParams& params)
{
    PowerBreakdown out;
    if (stats.cycles == 0) {
        return out;
    }
    const double seconds =
        static_cast<double>(stats.cycles) / (cfg.clock_ghz * 1e9);

    const double sram_j =
        (static_cast<double>(stats.sram_reads) * params.sram_read_pj +
         static_cast<double>(stats.sram_writes) * params.sram_write_pj) *
        1e-12;
    const double compute_j =
        static_cast<double>(stats.ops.total()) * params.fp_op_pj * 1e-12;
    const double noc_j = static_cast<double>(stats.link_activations) *
                         params.noc_hop_pj * 1e-12;

    out.sram_w = sram_j / seconds;
    out.compute_w = compute_j / seconds;
    out.noc_w = noc_j / seconds;
    out.leakage_w = params.leakage_mw_per_tile * 1e-3 *
                    static_cast<double>(cfg.num_tiles());
    return out;
}

} // namespace azul
