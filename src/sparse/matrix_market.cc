#include "sparse/matrix_market.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/strings.h"

namespace azul {

namespace {

struct MmHeader {
    bool pattern = false;
    bool symmetric = false;
    bool skew = false;
};

MmHeader
ParseHeader(const std::string& line)
{
    // %%MatrixMarket matrix coordinate <field> <symmetry>
    const std::vector<std::string> tok = SplitWhitespace(ToLower(line));
    if (tok.size() < 5 || tok[0] != "%%matrixmarket" || tok[1] != "matrix") {
        throw AzulError("not a Matrix Market file: bad banner '" + line +
                        "'");
    }
    if (tok[2] != "coordinate") {
        throw AzulError("only coordinate Matrix Market format is "
                        "supported, got '" + tok[2] + "'");
    }
    MmHeader h;
    if (tok[3] == "pattern") {
        h.pattern = true;
    } else if (tok[3] != "real" && tok[3] != "integer") {
        throw AzulError("unsupported Matrix Market field '" + tok[3] + "'");
    }
    if (tok[4] == "symmetric") {
        h.symmetric = true;
    } else if (tok[4] == "skew-symmetric") {
        h.symmetric = true;
        h.skew = true;
    } else if (tok[4] != "general") {
        throw AzulError("unsupported Matrix Market symmetry '" + tok[4] +
                        "'");
    }
    return h;
}

} // namespace

CooMatrix
ReadMatrixMarketStream(std::istream& in)
{
    std::string line;
    if (!std::getline(in, line)) {
        throw AzulError("empty Matrix Market input");
    }
    const MmHeader header = ParseHeader(line);

    // Skip comments, find the size line.
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '%') {
            break;
        }
    }
    Index rows = 0, cols = 0, nnz = 0;
    {
        std::istringstream iss(line);
        if (!(iss >> rows >> cols >> nnz)) {
            throw AzulError("bad Matrix Market size line: '" + line + "'");
        }
    }

    CooMatrix out(rows, cols);
    for (Index i = 0; i < nnz; ++i) {
        if (!std::getline(in, line)) {
            throw AzulError("Matrix Market input truncated: expected " +
                            std::to_string(nnz) + " entries, got " +
                            std::to_string(i));
        }
        if (line.empty()) {
            --i;
            continue;
        }
        std::istringstream iss(line);
        Index r = 0, c = 0;
        double v = 1.0;
        if (!(iss >> r >> c)) {
            throw AzulError("bad Matrix Market entry: '" + line + "'");
        }
        if (!header.pattern && !(iss >> v)) {
            throw AzulError("missing value in entry: '" + line + "'");
        }
        // Matrix Market is 1-indexed.
        out.Add(r - 1, c - 1, v);
        if (header.symmetric && r != c) {
            out.Add(c - 1, r - 1, header.skew ? -v : v);
        }
    }
    out.Canonicalize();
    return out;
}

CooMatrix
ReadMatrixMarket(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        throw AzulError("cannot open Matrix Market file '" + path + "'");
    }
    return ReadMatrixMarketStream(in);
}

void
WriteMatrixMarketStream(const CooMatrix& m, std::ostream& out)
{
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << "% written by azul\n";
    out << m.rows() << " " << m.cols() << " " << m.nnz() << "\n";
    out.precision(17);
    for (const Triplet& t : m.entries()) {
        out << (t.row + 1) << " " << (t.col + 1) << " " << t.val << "\n";
    }
}

void
WriteMatrixMarket(const CooMatrix& m, const std::string& path)
{
    std::ofstream out(path);
    if (!out) {
        throw AzulError("cannot open '" + path + "' for writing");
    }
    WriteMatrixMarketStream(m, out);
}

} // namespace azul
