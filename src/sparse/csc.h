/**
 * @file
 * Compressed sparse column matrix — used by the dataflow compiler,
 * which traverses matrices column-wise (each received vector element
 * scales a column of local nonzeros, Sec IV-A of the paper).
 */
#ifndef AZUL_SPARSE_CSC_H_
#define AZUL_SPARSE_CSC_H_

#include <vector>

#include "sparse/csr.h"
#include "util/common.h"

namespace azul {

/**
 * Compressed sparse column matrix. Same invariants as CsrMatrix with
 * rows and columns exchanged.
 */
class CscMatrix {
  public:
    CscMatrix() = default;

    static CscMatrix FromCsr(const CsrMatrix& csr);
    static CscMatrix FromCoo(const CooMatrix& coo);

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }
    Index nnz() const { return static_cast<Index>(row_idx_.size()); }

    const std::vector<Index>& col_ptr() const { return col_ptr_; }
    const std::vector<Index>& row_idx() const { return row_idx_; }
    const std::vector<double>& vals() const { return vals_; }

    Index ColBegin(Index c) const { return col_ptr_[c]; }
    Index ColEnd(Index c) const { return col_ptr_[c + 1]; }
    Index ColNnz(Index c) const { return col_ptr_[c + 1] - col_ptr_[c]; }

    /** Converts to CSR. */
    CsrMatrix ToCsr() const;

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<Index> col_ptr_{0};
    std::vector<Index> row_idx_;
    std::vector<double> vals_;
};

} // namespace azul

#endif // AZUL_SPARSE_CSC_H_
