#include "sparse/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sparse/permute.h"
#include "util/rng.h"

namespace azul {

namespace {

/**
 * Builds an SPD matrix from a symmetric off-diagonal weight list by
 * setting diag(i) = shift + sum_j |w_ij| (strict diagonal dominance).
 */
CsrMatrix
SpdFromEdges(Index n, const std::vector<Triplet>& off_diag, double shift)
{
    std::vector<double> diag(static_cast<std::size_t>(n), shift);
    CooMatrix coo(n, n);
    for (const Triplet& t : off_diag) {
        AZUL_CHECK(t.row != t.col);
        coo.Add(t.row, t.col, t.val);
        diag[static_cast<std::size_t>(t.row)] += std::abs(t.val);
    }
    for (Index i = 0; i < n; ++i) {
        coo.Add(i, i, diag[static_cast<std::size_t>(i)]);
    }
    return CsrMatrix::FromCoo(coo);
}

} // namespace

CsrMatrix
Grid2dLaplacian(Index nx, Index ny, double shift)
{
    AZUL_CHECK(nx > 0 && ny > 0);
    const auto id = [nx](Index x, Index y) { return y * nx + x; };
    std::vector<Triplet> edges;
    for (Index y = 0; y < ny; ++y) {
        for (Index x = 0; x < nx; ++x) {
            const Index i = id(x, y);
            if (x + 1 < nx) {
                edges.push_back({i, id(x + 1, y), -1.0});
                edges.push_back({id(x + 1, y), i, -1.0});
            }
            if (y + 1 < ny) {
                edges.push_back({i, id(x, y + 1), -1.0});
                edges.push_back({id(x, y + 1), i, -1.0});
            }
        }
    }
    return SpdFromEdges(nx * ny, edges, shift);
}

CsrMatrix
Grid3dLaplacian(Index nx, Index ny, Index nz, double shift)
{
    AZUL_CHECK(nx > 0 && ny > 0 && nz > 0);
    const auto id = [nx, ny](Index x, Index y, Index z) {
        return (z * ny + y) * nx + x;
    };
    std::vector<Triplet> edges;
    for (Index z = 0; z < nz; ++z) {
        for (Index y = 0; y < ny; ++y) {
            for (Index x = 0; x < nx; ++x) {
                const Index i = id(x, y, z);
                if (x + 1 < nx) {
                    edges.push_back({i, id(x + 1, y, z), -1.0});
                    edges.push_back({id(x + 1, y, z), i, -1.0});
                }
                if (y + 1 < ny) {
                    edges.push_back({i, id(x, y + 1, z), -1.0});
                    edges.push_back({id(x, y + 1, z), i, -1.0});
                }
                if (z + 1 < nz) {
                    edges.push_back({i, id(x, y, z + 1), -1.0});
                    edges.push_back({id(x, y, z + 1), i, -1.0});
                }
            }
        }
    }
    return SpdFromEdges(nx * ny * nz, edges, shift);
}

CsrMatrix
Grid2dNinePoint(Index nx, Index ny, double shift)
{
    AZUL_CHECK(nx > 0 && ny > 0);
    const auto id = [nx](Index x, Index y) { return y * nx + x; };
    std::vector<Triplet> edges;
    for (Index y = 0; y < ny; ++y) {
        for (Index x = 0; x < nx; ++x) {
            const Index i = id(x, y);
            // Enumerate the four "forward" neighbours; mirror each.
            const Index dxs[] = {1, 0, 1, -1};
            const Index dys[] = {0, 1, 1, 1};
            for (int d = 0; d < 4; ++d) {
                const Index x2 = x + dxs[d];
                const Index y2 = y + dys[d];
                if (x2 < 0 || x2 >= nx || y2 >= ny) {
                    continue;
                }
                const double w = (dxs[d] != 0 && dys[d] != 0) ? -0.5 : -1.0;
                edges.push_back({i, id(x2, y2), w});
                edges.push_back({id(x2, y2), i, w});
            }
        }
    }
    return SpdFromEdges(nx * ny, edges, shift);
}

namespace {

struct Point2 {
    double x, y;
};

struct Point3 {
    double x, y, z;
};

/** Orders node ids by spatial buckets so ids are spatially correlated. */
std::vector<Index>
SpatialOrder2d(const std::vector<Point2>& pts, Index buckets_per_dim)
{
    std::vector<Index> order(pts.size());
    std::iota(order.begin(), order.end(), Index{0});
    std::sort(order.begin(), order.end(), [&](Index a, Index b) {
        const auto bucket = [&](const Point2& p) {
            const Index bx = std::min<Index>(
                buckets_per_dim - 1,
                static_cast<Index>(p.x * static_cast<double>(
                                             buckets_per_dim)));
            const Index by = std::min<Index>(
                buckets_per_dim - 1,
                static_cast<Index>(p.y * static_cast<double>(
                                             buckets_per_dim)));
            return by * buckets_per_dim + bx;
        };
        const Index ba = bucket(pts[static_cast<std::size_t>(a)]);
        const Index bb = bucket(pts[static_cast<std::size_t>(b)]);
        return ba != bb ? ba < bb : a < b;
    });
    return order;
}

} // namespace

CsrMatrix
RandomGeometricLaplacian(Index n, double avg_degree, std::uint64_t seed,
                         double shift)
{
    AZUL_CHECK(n > 1);
    AZUL_CHECK(avg_degree > 0.0);
    Rng rng(seed);
    std::vector<Point2> pts(static_cast<std::size_t>(n));
    for (auto& p : pts) {
        p = {rng.UniformDouble(0.0, 1.0), rng.UniformDouble(0.0, 1.0)};
    }
    // Expected degree for radius r in the unit square is ~ n*pi*r^2.
    const double radius =
        std::sqrt(avg_degree / (static_cast<double>(n) * M_PI));

    // Bucket grid for neighbour search.
    const Index gdim = std::max<Index>(
        1, static_cast<Index>(1.0 / std::max(radius, 1e-9)));
    std::vector<std::vector<Index>> grid(
        static_cast<std::size_t>(gdim * gdim));
    const auto cell_of = [&](const Point2& p) {
        const Index cx = std::min<Index>(
            gdim - 1, static_cast<Index>(p.x * static_cast<double>(gdim)));
        const Index cy = std::min<Index>(
            gdim - 1, static_cast<Index>(p.y * static_cast<double>(gdim)));
        return cy * gdim + cx;
    };
    for (Index i = 0; i < n; ++i) {
        grid[static_cast<std::size_t>(
                 cell_of(pts[static_cast<std::size_t>(i)]))]
            .push_back(i);
    }

    // Relabel nodes in spatial-bucket order so ids correlate with
    // position (like SuiteSparse mesh orderings).
    const std::vector<Index> order = SpatialOrder2d(pts, gdim);
    std::vector<Index> relabel(static_cast<std::size_t>(n));
    for (Index new_id = 0; new_id < n; ++new_id) {
        relabel[static_cast<std::size_t>(
            order[static_cast<std::size_t>(new_id)])] = new_id;
    }

    std::vector<Triplet> edges;
    const double r2 = radius * radius;
    for (Index i = 0; i < n; ++i) {
        const Point2& pi = pts[static_cast<std::size_t>(i)];
        const Index cx = std::min<Index>(
            gdim - 1, static_cast<Index>(pi.x * static_cast<double>(gdim)));
        const Index cy = std::min<Index>(
            gdim - 1, static_cast<Index>(pi.y * static_cast<double>(gdim)));
        for (Index dy = -1; dy <= 1; ++dy) {
            for (Index dx = -1; dx <= 1; ++dx) {
                const Index nx = cx + dx;
                const Index ny = cy + dy;
                if (nx < 0 || nx >= gdim || ny < 0 || ny >= gdim) {
                    continue;
                }
                for (Index j :
                     grid[static_cast<std::size_t>(ny * gdim + nx)]) {
                    if (j <= i) {
                        continue; // each pair once
                    }
                    const Point2& pj = pts[static_cast<std::size_t>(j)];
                    const double ddx = pi.x - pj.x;
                    const double ddy = pi.y - pj.y;
                    if (ddx * ddx + ddy * ddy <= r2) {
                        const Index a = relabel[static_cast<std::size_t>(i)];
                        const Index b = relabel[static_cast<std::size_t>(j)];
                        edges.push_back({a, b, -1.0});
                        edges.push_back({b, a, -1.0});
                    }
                }
            }
        }
    }
    return SpdFromEdges(n, edges, shift);
}

CsrMatrix
FemLikeSpd(Index n, Index neighbors, std::uint64_t seed, double shift)
{
    AZUL_CHECK(n > 1);
    AZUL_CHECK(neighbors > 0 && neighbors < n);
    Rng rng(seed);
    std::vector<Point3> pts(static_cast<std::size_t>(n));
    for (auto& p : pts) {
        p = {rng.UniformDouble(0.0, 1.0), rng.UniformDouble(0.0, 1.0),
             rng.UniformDouble(0.0, 1.0)};
    }
    // Sort nodes along a 3-D bucket sweep so ids are spatially
    // correlated, then find k nearest among a candidate window — an
    // O(n·w) approximation sufficient for mesh-like connectivity.
    std::vector<Index> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), Index{0});
    const Index gdim =
        std::max<Index>(1, static_cast<Index>(std::cbrt(
                               static_cast<double>(n) / 8.0)));
    const auto bucket = [&](const Point3& p) {
        const auto clamp = [&](double v) {
            return std::min<Index>(
                gdim - 1,
                static_cast<Index>(v * static_cast<double>(gdim)));
        };
        return (clamp(p.z) * gdim + clamp(p.y)) * gdim + clamp(p.x);
    };
    std::sort(order.begin(), order.end(), [&](Index a, Index b) {
        const Index ba = bucket(pts[static_cast<std::size_t>(a)]);
        const Index bb = bucket(pts[static_cast<std::size_t>(b)]);
        return ba != bb ? ba < bb : a < b;
    });
    std::vector<Point3> sorted_pts(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i) {
        sorted_pts[static_cast<std::size_t>(i)] =
            pts[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
    }

    const Index window = std::max<Index>(neighbors * 4, 32);
    std::vector<Triplet> edges;
    std::vector<std::pair<double, Index>> cand;
    for (Index i = 0; i < n; ++i) {
        cand.clear();
        const Point3& pi = sorted_pts[static_cast<std::size_t>(i)];
        const Index lo = std::max<Index>(0, i - window);
        const Index hi = std::min<Index>(n - 1, i + window);
        for (Index j = lo; j <= hi; ++j) {
            if (j == i) {
                continue;
            }
            const Point3& pj = sorted_pts[static_cast<std::size_t>(j)];
            const double dx = pi.x - pj.x;
            const double dy = pi.y - pj.y;
            const double dz = pi.z - pj.z;
            cand.emplace_back(dx * dx + dy * dy + dz * dz, j);
        }
        const std::size_t k = std::min<std::size_t>(
            static_cast<std::size_t>(neighbors), cand.size());
        std::partial_sort(cand.begin(), cand.begin() + k, cand.end());
        for (std::size_t c = 0; c < k; ++c) {
            const Index j = cand[c].second;
            const double w = -rng.UniformDouble(0.5, 1.5);
            edges.push_back({i, j, w});
            edges.push_back({j, i, w});
        }
    }
    // Symmetrize weights: keep min (most negative) per unordered pair.
    CooMatrix coo(n, n);
    for (const Triplet& t : edges) {
        coo.Add(t.row, t.col, t.val);
    }
    coo.Canonicalize();
    std::vector<Triplet> sym;
    const CsrMatrix half = CsrMatrix::FromCoo(coo);
    for (Index r = 0; r < n; ++r) {
        for (Index k = half.RowBegin(r); k < half.RowEnd(r); ++k) {
            const Index c = half.col_idx()[k];
            if (c <= r) {
                continue;
            }
            const double w =
                std::min(half.vals()[k], half.At(c, r) != 0.0
                                             ? half.At(c, r)
                                             : half.vals()[k]);
            sym.push_back({r, c, w});
            sym.push_back({c, r, w});
        }
    }
    return SpdFromEdges(n, sym, shift);
}

CsrMatrix
RandomSpd(Index n, Index nnz_per_row, std::uint64_t seed, double shift)
{
    AZUL_CHECK(n > 1);
    AZUL_CHECK(nnz_per_row > 0);
    Rng rng(seed);
    std::vector<Triplet> edges;
    for (Index i = 0; i < n; ++i) {
        for (Index e = 0; e < nnz_per_row; ++e) {
            Index j = rng.UniformInt(0, n - 2);
            if (j >= i) {
                ++j; // avoid the diagonal
            }
            const double w = rng.UniformDouble(-1.0, 1.0);
            edges.push_back({i, j, w});
            edges.push_back({j, i, w});
        }
    }
    // Deduplicate via COO canonicalization (values sum, which keeps
    // symmetry).
    CooMatrix coo(n, n);
    for (const Triplet& t : edges) {
        coo.Add(t.row, t.col, t.val);
    }
    coo.Canonicalize();
    return SpdFromEdges(n, coo.entries(), shift);
}

CsrMatrix
Scramble(const CsrMatrix& a, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Index> order(static_cast<std::size_t>(a.rows()));
    std::iota(order.begin(), order.end(), Index{0});
    rng.Shuffle(order);
    return PermuteSymmetric(a, Permutation::FromNewToOld(std::move(order)));
}

std::vector<SuiteMatrix>
MakeBenchmarkSuite(double scale)
{
    AZUL_CHECK(scale > 0.0);
    const auto s = [scale](Index base) {
        return std::max<Index>(
            4, static_cast<Index>(static_cast<double>(base) *
                                  std::cbrt(scale)));
    };
    const auto s2 = [scale](Index base) {
        return std::max<Index>(
            4, static_cast<Index>(static_cast<double>(base) *
                                  std::sqrt(scale)));
    };

    std::vector<SuiteMatrix> suite;
    // Parallelism-limited, dense-row FEM meshes (thread / nd12k /
    // crankseg_1 analogs).
    suite.push_back({"fem3d-dense", "thread/nd12k",
                     FemLikeSpd(s(12) * s(12) * s(12), 24, 101), 0});
    suite.push_back({"fem3d-crank", "crankseg_1/m_t1",
                     FemLikeSpd(s(14) * s(14) * s(14), 16, 102), 0});
    // Mid-parallelism unstructured meshes (shipsec1 / consph / hood).
    suite.push_back({"geo-mesh", "shipsec1/consph",
                     RandomGeometricLaplacian(s2(64) * s2(64), 12.0, 103),
                     1});
    suite.push_back({"fem3d-shell", "bmwcra_1/hood",
                     FemLikeSpd(s(16) * s(16) * s(16), 8, 104), 1});
    suite.push_back({"geo-scrambled", "offshore (scrambled)",
                     Scramble(RandomGeometricLaplacian(
                                  s2(56) * s2(56), 10.0, 105),
                              105),
                     1});
    // High-parallelism, few-nonzeros-per-row grids (thermal2 / apache2 /
    // G3_circuit / ecology2 analogs).
    suite.push_back({"grid3d", "apache2/thermal2",
                     Grid3dLaplacian(s(20), s(20), s(20)), 2});
    suite.push_back({"grid2d-9pt", "tmt_sym",
                     Grid2dNinePoint(s2(72), s2(72)), 2});
    suite.push_back({"grid2d", "ecology2/G3_circuit",
                     Grid2dLaplacian(s2(90), s2(90)), 2});
    return suite;
}

std::vector<SuiteMatrix>
MakeSmallSuite()
{
    std::vector<SuiteMatrix> suite;
    suite.push_back({"small-fem", "crankseg_1", FemLikeSpd(512, 12, 7), 0});
    suite.push_back(
        {"small-geo", "consph", RandomGeometricLaplacian(768, 9.0, 8), 1});
    suite.push_back({"small-grid", "ecology2", Grid2dLaplacian(28, 28), 2});
    return suite;
}

} // namespace azul
