/**
 * @file
 * Triangle extraction helpers. PCG's Gauss-Seidel-style preconditioners
 * operate on A's lower/upper triangles; IC(0) produces a lower factor L
 * with the same pattern as A's lower triangle.
 */
#ifndef AZUL_SPARSE_TRIANGLE_H_
#define AZUL_SPARSE_TRIANGLE_H_

#include "sparse/csr.h"

namespace azul {

/** Returns the lower triangle of a, including the diagonal. */
CsrMatrix LowerTriangle(const CsrMatrix& a);

/** Returns the upper triangle of a, including the diagonal. */
CsrMatrix UpperTriangle(const CsrMatrix& a);

/** Returns the strictly lower triangle (no diagonal). */
CsrMatrix StrictLowerTriangle(const CsrMatrix& a);

/** True if every stored entry satisfies col <= row. */
bool IsLowerTriangular(const CsrMatrix& a);

/** True if every stored entry satisfies col >= row. */
bool IsUpperTriangular(const CsrMatrix& a);

/** True if every diagonal entry exists and is nonzero. */
bool HasFullNonzeroDiagonal(const CsrMatrix& a);

} // namespace azul

#endif // AZUL_SPARSE_TRIANGLE_H_
