#include "sparse/permute.h"

#include <numeric>

namespace azul {

Permutation::Permutation(Index n)
{
    AZUL_CHECK(n >= 0);
    new_to_old_.resize(static_cast<std::size_t>(n));
    std::iota(new_to_old_.begin(), new_to_old_.end(), Index{0});
    old_to_new_ = new_to_old_;
}

Permutation
Permutation::FromNewToOld(std::vector<Index> new_to_old)
{
    Permutation p;
    const Index n = static_cast<Index>(new_to_old.size());
    p.new_to_old_ = std::move(new_to_old);
    p.old_to_new_.assign(static_cast<std::size_t>(n), Index{-1});
    for (Index new_idx = 0; new_idx < n; ++new_idx) {
        const Index old_idx = p.new_to_old_[new_idx];
        AZUL_CHECK_MSG(old_idx >= 0 && old_idx < n,
                       "permutation entry " << old_idx << " out of range");
        AZUL_CHECK_MSG(p.old_to_new_[old_idx] == -1,
                       "duplicate permutation entry " << old_idx);
        p.old_to_new_[old_idx] = new_idx;
    }
    return p;
}

Permutation
Permutation::Compose(const Permutation& other) const
{
    AZUL_CHECK(size() == other.size());
    std::vector<Index> composed(new_to_old_.size());
    for (Index i = 0; i < size(); ++i) {
        composed[i] = other.NewToOld(NewToOld(i));
    }
    return FromNewToOld(std::move(composed));
}

Permutation
Permutation::Inverse() const
{
    return FromNewToOld(old_to_new_);
}

bool
Permutation::IsIdentity() const
{
    for (Index i = 0; i < size(); ++i) {
        if (new_to_old_[i] != i) {
            return false;
        }
    }
    return true;
}

CsrMatrix
PermuteSymmetric(const CsrMatrix& a, const Permutation& p)
{
    AZUL_CHECK(a.rows() == a.cols());
    AZUL_CHECK(a.rows() == p.size());
    CooMatrix coo(a.rows(), a.cols());
    for (Index r = 0; r < a.rows(); ++r) {
        const Index new_r = p.OldToNew(r);
        for (Index k = a.RowBegin(r); k < a.RowEnd(r); ++k) {
            coo.Add(new_r, p.OldToNew(a.col_idx()[k]), a.vals()[k]);
        }
    }
    return CsrMatrix::FromCoo(coo);
}

std::vector<double>
PermuteVector(const std::vector<double>& v, const Permutation& p)
{
    AZUL_CHECK(static_cast<Index>(v.size()) == p.size());
    std::vector<double> out(v.size());
    for (Index i = 0; i < p.size(); ++i) {
        out[i] = v[p.NewToOld(i)];
    }
    return out;
}

std::vector<double>
UnpermuteVector(const std::vector<double>& v, const Permutation& p)
{
    AZUL_CHECK(static_cast<Index>(v.size()) == p.size());
    std::vector<double> out(v.size());
    for (Index i = 0; i < p.size(); ++i) {
        out[p.NewToOld(i)] = v[i];
    }
    return out;
}

} // namespace azul
