#include "sparse/matrix_stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/strings.h"

namespace azul {

MatrixStats
ComputeMatrixStats(const CsrMatrix& a)
{
    MatrixStats s;
    s.n = a.rows();
    s.nnz = a.nnz();
    s.avg_nnz_per_row =
        s.n > 0 ? static_cast<double>(s.nnz) / static_cast<double>(s.n)
                : 0.0;
    s.min_nnz_per_row = s.n > 0 ? a.RowNnz(0) : 0;
    double dist_sum = 0.0;
    Index offdiag = 0;
    for (Index r = 0; r < a.rows(); ++r) {
        s.max_nnz_per_row = std::max(s.max_nnz_per_row, a.RowNnz(r));
        s.min_nnz_per_row = std::min(s.min_nnz_per_row, a.RowNnz(r));
        for (Index k = a.RowBegin(r); k < a.RowEnd(r); ++k) {
            const Index d = std::abs(a.col_idx()[k] - r);
            s.bandwidth = std::max(s.bandwidth, d);
            if (d > 0) {
                dist_sum += static_cast<double>(d);
                ++offdiag;
            }
        }
    }
    s.avg_offdiag_distance =
        offdiag > 0 ? dist_sum / static_cast<double>(offdiag) : 0.0;
    s.matrix_bytes = a.FootprintBytes();
    s.vector_bytes = static_cast<std::size_t>(a.rows()) * sizeof(double);
    return s;
}

std::string
FormatMatrixStats(const MatrixStats& s)
{
    std::ostringstream oss;
    oss << "n=" << s.n << " nnz=" << s.nnz << " nnz/row="
        << s.avg_nnz_per_row << " [" << s.min_nnz_per_row << ","
        << s.max_nnz_per_row << "]"
        << " bw=" << s.bandwidth
        << " A=" << HumanBytes(static_cast<double>(s.matrix_bytes))
        << " b=" << HumanBytes(static_cast<double>(s.vector_bytes));
    return oss.str();
}

} // namespace azul
