#include "sparse/coo.h"

#include <algorithm>

namespace azul {

void
CooMatrix::Add(Index row, Index col, double val)
{
    AZUL_CHECK_MSG(row >= 0 && row < rows_ && col >= 0 && col < cols_,
                   "entry (" << row << "," << col << ") out of bounds for "
                             << rows_ << "x" << cols_);
    entries_.push_back({row, col, val});
}

void
CooMatrix::Canonicalize()
{
    std::sort(entries_.begin(), entries_.end(),
              [](const Triplet& a, const Triplet& b) {
                  return a.row != b.row ? a.row < b.row : a.col < b.col;
              });
    std::vector<Triplet> merged;
    merged.reserve(entries_.size());
    for (const Triplet& t : entries_) {
        if (!merged.empty() && merged.back().row == t.row &&
            merged.back().col == t.col) {
            merged.back().val += t.val;
        } else {
            merged.push_back(t);
        }
    }
    entries_ = std::move(merged);
}

bool
CooMatrix::IsCanonical() const
{
    for (std::size_t i = 1; i < entries_.size(); ++i) {
        const Triplet& a = entries_[i - 1];
        const Triplet& b = entries_[i];
        if (a.row > b.row || (a.row == b.row && a.col >= b.col)) {
            return false;
        }
    }
    return true;
}

CooMatrix
CooMatrix::Transposed() const
{
    CooMatrix out(cols_, rows_);
    out.entries_.reserve(entries_.size());
    for (const Triplet& t : entries_) {
        out.entries_.push_back({t.col, t.row, t.val});
    }
    out.Canonicalize();
    return out;
}

void
CooMatrix::SymmetrizeFromLower()
{
    std::vector<Triplet> extra;
    for (const Triplet& t : entries_) {
        AZUL_CHECK_MSG(t.row >= t.col,
                       "SymmetrizeFromLower expects lower-triangular input");
        if (t.row != t.col) {
            extra.push_back({t.col, t.row, t.val});
        }
    }
    entries_.insert(entries_.end(), extra.begin(), extra.end());
    Canonicalize();
}

} // namespace azul
