/**
 * @file
 * ASCII "spy plot" of a sparse matrix's structure — handy for docs,
 * examples, and eyeballing what coloring/RCM/scrambling do to a
 * sparsity pattern.
 */
#ifndef AZUL_SPARSE_SPY_H_
#define AZUL_SPARSE_SPY_H_

#include <string>

#include "sparse/csr.h"

namespace azul {

/**
 * Renders the sparsity pattern of a into a width x height character
 * grid. Each cell aggregates a block of the matrix; density maps to
 * the ramp " .:+*#@" (space = empty block). Rows end with '\n'.
 */
std::string AsciiSpyPlot(const CsrMatrix& a, int width = 64,
                         int height = 32);

} // namespace azul

#endif // AZUL_SPARSE_SPY_H_
