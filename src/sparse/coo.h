/**
 * @file
 * Coordinate-format sparse matrix. COO is the interchange format: the
 * Matrix Market reader and the synthetic generators produce COO, which
 * is then converted to CSR/CSC for computation.
 */
#ifndef AZUL_SPARSE_COO_H_
#define AZUL_SPARSE_COO_H_

#include <vector>

#include "util/common.h"

namespace azul {

/** One nonzero entry in coordinate format. */
struct Triplet {
    Index row = 0;
    Index col = 0;
    double val = 0.0;

    friend bool
    operator==(const Triplet& a, const Triplet& b)
    {
        return a.row == b.row && a.col == b.col && a.val == b.val;
    }
};

/**
 * Coordinate-format sparse matrix.
 *
 * Entries may be in any order and may contain duplicates until
 * Canonicalize() is called, which sorts row-major and sums duplicates.
 */
class CooMatrix {
  public:
    CooMatrix() = default;
    CooMatrix(Index rows, Index cols) : rows_(rows), cols_(cols)
    {
        AZUL_CHECK(rows >= 0 && cols >= 0);
    }

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }
    Index nnz() const { return static_cast<Index>(entries_.size()); }

    const std::vector<Triplet>& entries() const { return entries_; }
    std::vector<Triplet>& mutable_entries() { return entries_; }

    /** Appends one entry; bounds-checked. */
    void Add(Index row, Index col, double val);

    /**
     * Sorts entries row-major (row, then col) and merges duplicate
     * coordinates by summing their values. Zero-valued results of the
     * merge are kept (explicit zeros are legal in sparse formats).
     */
    void Canonicalize();

    /** True if entries are sorted row-major with no duplicates. */
    bool IsCanonical() const;

    /** Returns the transpose (entries swapped, then canonicalized). */
    CooMatrix Transposed() const;

    /**
     * Fills in the strictly-upper (or strictly-lower) entries so the
     * matrix is numerically symmetric. Requires that only one triangle
     * is currently populated off the diagonal.
     */
    void SymmetrizeFromLower();

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<Triplet> entries_;
};

} // namespace azul

#endif // AZUL_SPARSE_COO_H_
