#include "sparse/csc.h"

namespace azul {

CscMatrix
CscMatrix::FromCsr(const CsrMatrix& csr)
{
    // The transpose of a CSR matrix, reinterpreted, is the CSC form of
    // the original.
    const CsrMatrix t = csr.Transposed();
    CscMatrix out;
    out.rows_ = csr.rows();
    out.cols_ = csr.cols();
    out.col_ptr_ = t.row_ptr();
    out.row_idx_ = t.col_idx();
    out.vals_ = t.vals();
    return out;
}

CscMatrix
CscMatrix::FromCoo(const CooMatrix& coo)
{
    return FromCsr(CsrMatrix::FromCoo(coo));
}

CsrMatrix
CscMatrix::ToCsr() const
{
    CsrMatrix as_transpose = CsrMatrix::FromParts(
        cols_, rows_, col_ptr_, row_idx_, vals_);
    return as_transpose.Transposed();
}

} // namespace azul
