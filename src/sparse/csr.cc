#include "sparse/csr.h"

#include <algorithm>
#include <cmath>

namespace azul {

CsrMatrix
CsrMatrix::FromCoo(const CooMatrix& coo)
{
    const CooMatrix* src = &coo;
    CooMatrix canonical;
    if (!coo.IsCanonical()) {
        canonical = coo;
        canonical.Canonicalize();
        src = &canonical;
    }

    CsrMatrix out;
    out.rows_ = src->rows();
    out.cols_ = src->cols();
    out.row_ptr_.assign(static_cast<std::size_t>(src->rows()) + 1, 0);
    out.col_idx_.reserve(src->entries().size());
    out.vals_.reserve(src->entries().size());
    for (const Triplet& t : src->entries()) {
        ++out.row_ptr_[static_cast<std::size_t>(t.row) + 1];
        out.col_idx_.push_back(t.col);
        out.vals_.push_back(t.val);
    }
    for (std::size_t r = 0; r + 1 < out.row_ptr_.size(); ++r) {
        out.row_ptr_[r + 1] += out.row_ptr_[r];
    }
    return out;
}

CsrMatrix
CsrMatrix::FromParts(Index rows, Index cols, std::vector<Index> row_ptr,
                     std::vector<Index> col_idx, std::vector<double> vals)
{
    AZUL_CHECK(rows >= 0 && cols >= 0);
    AZUL_CHECK(row_ptr.size() == static_cast<std::size_t>(rows) + 1);
    AZUL_CHECK(row_ptr.front() == 0);
    AZUL_CHECK(row_ptr.back() == static_cast<Index>(col_idx.size()));
    AZUL_CHECK(col_idx.size() == vals.size());
    for (Index r = 0; r < rows; ++r) {
        AZUL_CHECK(row_ptr[r] <= row_ptr[r + 1]);
        for (Index k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
            AZUL_CHECK(col_idx[k] >= 0 && col_idx[k] < cols);
            if (k > row_ptr[r]) {
                AZUL_CHECK_MSG(col_idx[k - 1] < col_idx[k],
                               "row " << r << " not strictly sorted");
            }
        }
    }

    CsrMatrix out;
    out.rows_ = rows;
    out.cols_ = cols;
    out.row_ptr_ = std::move(row_ptr);
    out.col_idx_ = std::move(col_idx);
    out.vals_ = std::move(vals);
    return out;
}

double
CsrMatrix::At(Index r, Index c) const
{
    AZUL_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    const auto begin = col_idx_.begin() + RowBegin(r);
    const auto end = col_idx_.begin() + RowEnd(r);
    const auto it = std::lower_bound(begin, end, c);
    if (it != end && *it == c) {
        return vals_[static_cast<std::size_t>(it - col_idx_.begin())];
    }
    return 0.0;
}

bool
CsrMatrix::IsSymmetric(double tol) const
{
    if (rows_ != cols_) {
        return false;
    }
    for (Index r = 0; r < rows_; ++r) {
        for (Index k = RowBegin(r); k < RowEnd(r); ++k) {
            const Index c = col_idx_[k];
            if (c <= r) {
                continue; // check each unordered pair once, from above
            }
            const double mirror = At(c, r);
            if (std::abs(mirror - vals_[k]) > tol) {
                return false;
            }
        }
    }
    return true;
}

CooMatrix
CsrMatrix::ToCoo() const
{
    CooMatrix out(rows_, cols_);
    for (Index r = 0; r < rows_; ++r) {
        for (Index k = RowBegin(r); k < RowEnd(r); ++k) {
            out.Add(r, col_idx_[k], vals_[k]);
        }
    }
    return out;
}

CsrMatrix
CsrMatrix::Transposed() const
{
    // Counting transpose: histogram columns, prefix sum, scatter.
    CsrMatrix out;
    out.rows_ = cols_;
    out.cols_ = rows_;
    out.row_ptr_.assign(static_cast<std::size_t>(cols_) + 1, 0);
    out.col_idx_.resize(col_idx_.size());
    out.vals_.resize(vals_.size());
    for (Index c : col_idx_) {
        ++out.row_ptr_[static_cast<std::size_t>(c) + 1];
    }
    for (std::size_t r = 0; r + 1 < out.row_ptr_.size(); ++r) {
        out.row_ptr_[r + 1] += out.row_ptr_[r];
    }
    std::vector<Index> cursor(out.row_ptr_.begin(), out.row_ptr_.end() - 1);
    for (Index r = 0; r < rows_; ++r) {
        for (Index k = RowBegin(r); k < RowEnd(r); ++k) {
            const Index c = col_idx_[k];
            const Index slot = cursor[static_cast<std::size_t>(c)]++;
            out.col_idx_[slot] = r;
            out.vals_[slot] = vals_[k];
        }
    }
    return out;
}

std::size_t
CsrMatrix::FootprintBytes() const
{
    return row_ptr_.size() * sizeof(Index) +
           col_idx_.size() * sizeof(Index) + vals_.size() * sizeof(double);
}

} // namespace azul
