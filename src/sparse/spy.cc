#include "sparse/spy.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace azul {

std::string
AsciiSpyPlot(const CsrMatrix& a, int width, int height)
{
    AZUL_CHECK(width > 0 && height > 0);
    AZUL_CHECK(a.rows() > 0 && a.cols() > 0);
    width = static_cast<int>(
        std::min<Index>(width, a.cols()));
    height = static_cast<int>(
        std::min<Index>(height, a.rows()));

    std::vector<Index> counts(
        static_cast<std::size_t>(width) *
            static_cast<std::size_t>(height),
        0);
    for (Index r = 0; r < a.rows(); ++r) {
        const auto cell_r = static_cast<std::size_t>(
            r * height / a.rows());
        for (Index k = a.RowBegin(r); k < a.RowEnd(r); ++k) {
            const auto cell_c = static_cast<std::size_t>(
                a.col_idx()[k] * width / a.cols());
            ++counts[cell_r * static_cast<std::size_t>(width) +
                     cell_c];
        }
    }
    Index max_count = 1;
    for (Index c : counts) {
        max_count = std::max(max_count, c);
    }

    static const char kRamp[] = " .:+*#@";
    constexpr int kLevels = static_cast<int>(sizeof(kRamp)) - 2;
    std::string out;
    out.reserve(static_cast<std::size_t>((width + 1) * height));
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            const Index c =
                counts[static_cast<std::size_t>(y) *
                           static_cast<std::size_t>(width) +
                       static_cast<std::size_t>(x)];
            if (c == 0) {
                out.push_back(' ');
            } else {
                // Log-ish ramp: even a single nonzero is visible.
                const double frac =
                    std::log1p(static_cast<double>(c)) /
                    std::log1p(static_cast<double>(max_count));
                const int level = 1 + std::min(kLevels - 1,
                                               static_cast<int>(
                                                   frac * kLevels));
                out.push_back(kRamp[level]);
            }
        }
        out.push_back('\n');
    }
    return out;
}

} // namespace azul
