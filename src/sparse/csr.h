/**
 * @file
 * Compressed sparse row matrix — the primary compute format for SpMV
 * and row-oriented traversals.
 */
#ifndef AZUL_SPARSE_CSR_H_
#define AZUL_SPARSE_CSR_H_

#include <vector>

#include "sparse/coo.h"
#include "util/common.h"

namespace azul {

/**
 * Compressed sparse row matrix.
 *
 * Invariants: row_ptr has rows()+1 entries, is nondecreasing,
 * row_ptr[0] == 0 and row_ptr[rows()] == nnz(); within each row the
 * column indices are strictly increasing.
 */
class CsrMatrix {
  public:
    CsrMatrix() = default;

    /** Builds from canonical COO (canonicalizes a copy if needed). */
    static CsrMatrix FromCoo(const CooMatrix& coo);

    /** Builds directly from raw arrays; validates invariants. */
    static CsrMatrix FromParts(Index rows, Index cols,
                               std::vector<Index> row_ptr,
                               std::vector<Index> col_idx,
                               std::vector<double> vals);

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }
    Index nnz() const { return static_cast<Index>(col_idx_.size()); }

    const std::vector<Index>& row_ptr() const { return row_ptr_; }
    const std::vector<Index>& col_idx() const { return col_idx_; }
    const std::vector<double>& vals() const { return vals_; }
    std::vector<double>& mutable_vals() { return vals_; }

    Index RowBegin(Index r) const { return row_ptr_[r]; }
    Index RowEnd(Index r) const { return row_ptr_[r + 1]; }
    Index RowNnz(Index r) const { return row_ptr_[r + 1] - row_ptr_[r]; }

    /** Value at (r, c), or 0 if not stored. Binary search within row. */
    double At(Index r, Index c) const;

    /** True if the sparsity pattern and values are symmetric. */
    bool IsSymmetric(double tol = 0.0) const;

    /** Converts back to canonical COO. */
    CooMatrix ToCoo() const;

    /** Returns the transpose as CSR (equivalently, this in CSC). */
    CsrMatrix Transposed() const;

    /** Memory footprint of the stored arrays in bytes. */
    std::size_t FootprintBytes() const;

    friend bool
    operator==(const CsrMatrix& a, const CsrMatrix& b)
    {
        return a.rows_ == b.rows_ && a.cols_ == b.cols_ &&
               a.row_ptr_ == b.row_ptr_ && a.col_idx_ == b.col_idx_ &&
               a.vals_ == b.vals_;
    }

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<Index> row_ptr_{0};
    std::vector<Index> col_idx_;
    std::vector<double> vals_;
};

} // namespace azul

#endif // AZUL_SPARSE_CSR_H_
