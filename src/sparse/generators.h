/**
 * @file
 * Synthetic SPD matrix generators.
 *
 * The paper evaluates on SuiteSparse SPD matrices spanning structured
 * grids (thermal2, ecology2, apache2), unstructured 3-D FEM meshes
 * (consph, shipsec1, m_t1) and parallelism-limited stiffness matrices
 * (thread, nd12k, crankseg_1). Those files are not redistributable
 * here, so these generators produce matrices of the same classes:
 *
 *  - grid Laplacians (5/7/9-point): structured, high parallelism, few
 *    nonzeros per row;
 *  - random-geometric-graph Laplacians: unstructured but spatially
 *    correlated, moderate degree;
 *  - k-nearest-neighbour FEM-like meshes with boosted connectivity:
 *    dense rows, low SpTRSV parallelism (the crankseg_1 analog);
 *  - scrambled variants (random symmetric permutation) that destroy
 *    spatial correlation, defeating position- and coordinate-based
 *    mappings exactly as the paper's Sec VI-C discusses.
 *
 * All generators return SPD matrices (symmetric + strictly diagonally
 * dominant with positive diagonal) so that CG/PCG and IC(0) are well
 * defined.
 */
#ifndef AZUL_SPARSE_GENERATORS_H_
#define AZUL_SPARSE_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/csr.h"

namespace azul {

/** 2-D grid Laplacian (5-point stencil) + shift, nx*ny unknowns. */
CsrMatrix Grid2dLaplacian(Index nx, Index ny, double shift = 1e-3);

/** 3-D grid Laplacian (7-point stencil) + shift, nx*ny*nz unknowns. */
CsrMatrix Grid3dLaplacian(Index nx, Index ny, Index nz,
                          double shift = 1e-3);

/** 2-D grid with 9-point (Moore-neighbourhood) stencil + shift. */
CsrMatrix Grid2dNinePoint(Index nx, Index ny, double shift = 1e-3);

/**
 * Laplacian of a random geometric graph: n points uniform in the unit
 * square, edges between points within the radius giving the requested
 * expected degree. Spatially correlated when nodes are ordered by a
 * grid-bucket sweep (the default).
 */
CsrMatrix RandomGeometricLaplacian(Index n, double avg_degree,
                                   std::uint64_t seed,
                                   double shift = 1e-3);

/**
 * FEM-like unstructured mesh matrix: k-nearest-neighbour graph over
 * random 3-D points, symmetrized, with random SPD element weights.
 * Large k produces dense rows and long dependence chains — the analog
 * of the paper's parallelism-limited matrices.
 */
CsrMatrix FemLikeSpd(Index n, Index neighbors, std::uint64_t seed,
                     double shift = 1e-2);

/**
 * Random sparse SPD matrix with no structure at all: uniformly random
 * off-diagonal pattern, symmetrized, diagonally dominant.
 */
CsrMatrix RandomSpd(Index n, Index nnz_per_row, std::uint64_t seed,
                    double shift = 1.0);

/** Applies a random symmetric permutation, destroying locality. */
CsrMatrix Scramble(const CsrMatrix& a, std::uint64_t seed);

/**
 * One matrix of the benchmark suite. `parallelism_class` orders the
 * suite the way the paper's figures do (limited → ample).
 */
struct SuiteMatrix {
    std::string name;      //!< paper-analog name, e.g. "grid2d-large"
    std::string analog_of; //!< the SuiteSparse matrix it stands in for
    CsrMatrix a;
    int parallelism_class; //!< 0 = parallelism-limited … 2 = ample
};

/**
 * The benchmark suite used by the evaluation benches: a fixed,
 * deterministic set of matrices spanning the paper's axis from
 * parallelism-limited FEM meshes to high-parallelism 2-D grids.
 * `scale` multiplies problem sizes (1 = laptop default, larger values
 * approach the paper's footprints).
 */
std::vector<SuiteMatrix> MakeBenchmarkSuite(double scale = 1.0);

/** Reduced suite for quick benches and tests (3 small matrices). */
std::vector<SuiteMatrix> MakeSmallSuite();

} // namespace azul

#endif // AZUL_SPARSE_GENERATORS_H_
