/**
 * @file
 * Matrix Market (.mtx) reader and writer.
 *
 * Supports the subset used by SuiteSparse SPD matrices: coordinate
 * format, real/integer/pattern fields, general/symmetric symmetry.
 * Symmetric inputs are expanded to full storage on read.
 */
#ifndef AZUL_SPARSE_MATRIX_MARKET_H_
#define AZUL_SPARSE_MATRIX_MARKET_H_

#include <iosfwd>
#include <string>

#include "sparse/coo.h"

namespace azul {

/** Reads a Matrix Market file from disk. Throws AzulError on failure. */
CooMatrix ReadMatrixMarket(const std::string& path);

/** Reads Matrix Market content from a stream (for tests). */
CooMatrix ReadMatrixMarketStream(std::istream& in);

/**
 * Writes in coordinate/real/general format (symmetric matrices are
 * written with full storage for simplicity).
 */
void WriteMatrixMarket(const CooMatrix& m, const std::string& path);

/** Stream variant of WriteMatrixMarket. */
void WriteMatrixMarketStream(const CooMatrix& m, std::ostream& out);

} // namespace azul

#endif // AZUL_SPARSE_MATRIX_MARKET_H_
