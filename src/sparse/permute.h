/**
 * @file
 * Permutation utilities. Graph-coloring preprocessing (Sec II-A of the
 * paper) produces a symmetric permutation P so that PAP^T groups
 * independent rows; these helpers apply and validate such permutations.
 */
#ifndef AZUL_SPARSE_PERMUTE_H_
#define AZUL_SPARSE_PERMUTE_H_

#include <vector>

#include "sparse/csr.h"
#include "util/common.h"

namespace azul {

/**
 * A permutation of n indices. perm[new_index] == old_index, i.e. it
 * answers "which old row lands in this new slot?". The inverse
 * satisfies inverse[old_index] == new_index.
 */
class Permutation {
  public:
    Permutation() = default;

    /** Identity permutation of size n. */
    explicit Permutation(Index n);

    /** Builds from new→old order; validates it is a bijection. */
    static Permutation FromNewToOld(std::vector<Index> new_to_old);

    Index size() const { return static_cast<Index>(new_to_old_.size()); }
    Index NewToOld(Index new_idx) const { return new_to_old_[new_idx]; }
    Index OldToNew(Index old_idx) const { return old_to_new_[old_idx]; }

    const std::vector<Index>& new_to_old() const { return new_to_old_; }
    const std::vector<Index>& old_to_new() const { return old_to_new_; }

    /** Composition: (this ∘ other), applying `other` first. */
    Permutation Compose(const Permutation& other) const;

    Permutation Inverse() const;

    bool IsIdentity() const;

  private:
    std::vector<Index> new_to_old_;
    std::vector<Index> old_to_new_;
};

/** Applies symmetric permutation: result = P A P^T. */
CsrMatrix PermuteSymmetric(const CsrMatrix& a, const Permutation& p);

/** Permutes a dense vector: out[new] = v[perm.NewToOld(new)]. */
std::vector<double> PermuteVector(const std::vector<double>& v,
                                  const Permutation& p);

/** Inverse of PermuteVector: out[perm.NewToOld(new)] = v[new]. */
std::vector<double> UnpermuteVector(const std::vector<double>& v,
                                    const Permutation& p);

} // namespace azul

#endif // AZUL_SPARSE_PERMUTE_H_
