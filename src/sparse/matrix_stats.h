/**
 * @file
 * Structural statistics of sparse matrices, used for the evaluation
 * tables (footprints like Table IV) and to characterize generator
 * output (nonzeros per row, bandwidth, spatial correlation).
 */
#ifndef AZUL_SPARSE_MATRIX_STATS_H_
#define AZUL_SPARSE_MATRIX_STATS_H_

#include <string>

#include "sparse/csr.h"

namespace azul {

/** Summary of a matrix's structure. */
struct MatrixStats {
    Index n = 0;
    Index nnz = 0;
    double avg_nnz_per_row = 0.0;
    Index max_nnz_per_row = 0;
    Index min_nnz_per_row = 0;
    /** Max |row - col| over stored entries. */
    Index bandwidth = 0;
    /** Mean |row - col| over stored off-diagonal entries. */
    double avg_offdiag_distance = 0.0;
    /** Matrix footprint in bytes (CSR arrays). */
    std::size_t matrix_bytes = 0;
    /** One dense fp64 vector's footprint in bytes. */
    std::size_t vector_bytes = 0;
};

/** Computes structural statistics of a. */
MatrixStats ComputeMatrixStats(const CsrMatrix& a);

/** Formats stats as one human-readable line. */
std::string FormatMatrixStats(const MatrixStats& s);

} // namespace azul

#endif // AZUL_SPARSE_MATRIX_STATS_H_
