#include "sparse/triangle.h"

namespace azul {

namespace {

enum class TriangleKind { kLower, kUpper, kStrictLower };

CsrMatrix
ExtractTriangle(const CsrMatrix& a, TriangleKind kind)
{
    AZUL_CHECK(a.rows() == a.cols());
    std::vector<Index> row_ptr{0};
    std::vector<Index> col_idx;
    std::vector<double> vals;
    row_ptr.reserve(static_cast<std::size_t>(a.rows()) + 1);
    for (Index r = 0; r < a.rows(); ++r) {
        for (Index k = a.RowBegin(r); k < a.RowEnd(r); ++k) {
            const Index c = a.col_idx()[k];
            const bool keep =
                kind == TriangleKind::kLower ? c <= r :
                kind == TriangleKind::kUpper ? c >= r : c < r;
            if (keep) {
                col_idx.push_back(c);
                vals.push_back(a.vals()[k]);
            }
        }
        row_ptr.push_back(static_cast<Index>(col_idx.size()));
    }
    return CsrMatrix::FromParts(a.rows(), a.cols(), std::move(row_ptr),
                                std::move(col_idx), std::move(vals));
}

} // namespace

CsrMatrix
LowerTriangle(const CsrMatrix& a)
{
    return ExtractTriangle(a, TriangleKind::kLower);
}

CsrMatrix
UpperTriangle(const CsrMatrix& a)
{
    return ExtractTriangle(a, TriangleKind::kUpper);
}

CsrMatrix
StrictLowerTriangle(const CsrMatrix& a)
{
    return ExtractTriangle(a, TriangleKind::kStrictLower);
}

bool
IsLowerTriangular(const CsrMatrix& a)
{
    for (Index r = 0; r < a.rows(); ++r) {
        for (Index k = a.RowBegin(r); k < a.RowEnd(r); ++k) {
            if (a.col_idx()[k] > r) {
                return false;
            }
        }
    }
    return true;
}

bool
IsUpperTriangular(const CsrMatrix& a)
{
    for (Index r = 0; r < a.rows(); ++r) {
        if (a.RowBegin(r) < a.RowEnd(r) && a.col_idx()[a.RowBegin(r)] < r) {
            return false;
        }
    }
    return true;
}

bool
HasFullNonzeroDiagonal(const CsrMatrix& a)
{
    if (a.rows() != a.cols()) {
        return false;
    }
    for (Index r = 0; r < a.rows(); ++r) {
        if (a.At(r, r) == 0.0) {
            return false;
        }
    }
    return true;
}

} // namespace azul
