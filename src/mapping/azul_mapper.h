/**
 * @file
 * Azul's hypergraph-partitioning data mapper (Sec IV).
 *
 * Builds one joint hypergraph over all operands of the PCG kernels —
 * nonzeros of A, nonzeros of the preconditioner factor L, and vector
 * slots — with a hyperedge per matrix row and per matrix column
 * (each including the corresponding vector slot), partitions it with
 * the multilevel partitioner, and lays parts onto the torus.
 *
 * Options implement the paper's two refinements:
 *  - row hyperedges weigh more than column hyperedges, because
 *    breaking a row turns a fused FMAC into a standalone Add and can
 *    delay SpTRSV variable elimination (Sec IV-C);
 *  - vertex weights carry temporal quantile constraints derived from
 *    SpTRSV dependence depth, so every tile gets a share of early and
 *    late work (time balancing, Fig 17).
 */
#ifndef AZUL_MAPPING_AZUL_MAPPER_H_
#define AZUL_MAPPING_AZUL_MAPPER_H_

#include "mapping/mapping.h"
#include "mapping/partitioner.h"
#include "mapping/placement.h"

namespace azul {

/** Azul mapper configuration. */
struct AzulMapperOptions {
    /** Temporal quantile count (q in the paper; 0 or 1 disables). */
    int time_quantiles = 5;
    /** Weight of row hyperedges relative to column hyperedges. */
    Weight row_edge_weight = 2;
    Weight col_edge_weight = 1;
    /** Memory weight of one vector slot relative to one nonzero
     *  (a slot backs several dense vectors plus an accumulator). */
    Weight vector_slot_weight = 4;
    /** Placement of partition ids onto the torus grid. */
    PlacementStrategy placement = PlacementStrategy::kZOrder;
    /** Torus grid dims; width*height must equal num_tiles. Set to 0
     *  to auto-derive a near-square grid. */
    std::int32_t grid_width = 0;
    std::int32_t grid_height = 0;
    /** Underlying partitioner knobs. */
    PartitionerOptions partitioner;
};

/** The Azul hypergraph mapper. */
class AzulMapper final : public Mapper {
  public:
    explicit AzulMapper(AzulMapperOptions opts = {})
        : opts_(std::move(opts))
    {
    }

    std::string name() const override { return "azul-hypergraph"; }

    DataMapping Map(const MappingProblem& prob,
                    std::int32_t num_tiles) override;

    /**
     * Exposes the constructed hypergraph for tests/diagnostics:
     * vertices are [A nnz | L nnz | vector slots].
     */
    Hypergraph BuildHypergraph(const MappingProblem& prob) const;

  private:
    AzulMapperOptions opts_;
};

} // namespace azul

#endif // AZUL_MAPPING_AZUL_MAPPER_H_
