#include "mapping/partitioner.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <functional>
#include <optional>
#include <queue>
#include <utility>

#include "mapping/coarsen.h"
#include "mapping/fm_refine.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace azul {

namespace {

// Salts separating the branch-local RNG streams of one recursion
// node: the coarsening chain and each initial-partition try draw from
// independent streams, so the tries can run in any order (or in
// parallel) without consuming from a shared generator.
constexpr std::uint64_t kCoarsenSalt = 0xC0A7;
constexpr std::uint64_t kInitialSalt = 0x171A;

/** Shared, immutable context of one PartitionHypergraph call. */
struct BisectContext {
    const PartitionerOptions& opts;
    ThreadPool* pool; //!< nullptr => fully serial execution
    std::vector<std::int32_t>* out;
    PartitionPhaseStats* phases; //!< optional, may be nullptr
};

/** Per-constraint maximum vertex weight, in one pass over vertices
 *  (hoisted out of MakeConstraints: callers compute it once per
 *  hypergraph instead of once per constraint scan). */
std::vector<Weight>
MaxVertexWeights(const Hypergraph& hg)
{
    const int nc = hg.num_constraints();
    std::vector<Weight> max_vw(static_cast<std::size_t>(nc), 0);
    for (Index v = 0; v < hg.NumVertices(); ++v) {
        for (int c = 0; c < nc; ++c) {
            max_vw[static_cast<std::size_t>(c)] =
                std::max(max_vw[static_cast<std::size_t>(c)],
                         hg.VertexWeight(v, c));
        }
    }
    return max_vw;
}

/**
 * Builds per-side capacity limits for a bisection with target ratio r
 * (share of every constraint's weight going to side 0). Capacities get
 * epsilon slack plus one max-vertex-weight of headroom so a feasible
 * assignment always exists. max_vw comes from MaxVertexWeights(hg).
 */
BisectionConstraints
MakeConstraints(const Hypergraph& hg, double ratio, double epsilon,
                const std::vector<Weight>& max_vw)
{
    const int nc = hg.num_constraints();
    BisectionConstraints cons;
    cons.max_part0.resize(static_cast<std::size_t>(nc));
    cons.max_part1.resize(static_cast<std::size_t>(nc));
    for (int c = 0; c < nc; ++c) {
        const Weight total = hg.TotalWeight(c);
        cons.max_part0[static_cast<std::size_t>(c)] =
            static_cast<Weight>(std::ceil(static_cast<double>(total) *
                                          ratio * (1.0 + epsilon))) +
            max_vw[static_cast<std::size_t>(c)];
        cons.max_part1[static_cast<std::size_t>(c)] =
            static_cast<Weight>(
                std::ceil(static_cast<double>(total) * (1.0 - ratio) *
                          (1.0 + epsilon))) +
            max_vw[static_cast<std::size_t>(c)];
    }
    return cons;
}

/**
 * Greedy region growth: BFS-like expansion from a random seed,
 * repeatedly absorbing the frontier vertex with the highest
 * connectivity to the grown side, until side 0 reaches its target
 * share of constraint 0.
 */
std::vector<std::int32_t>
GrowInitialBisection(const Hypergraph& hg, double ratio, Rng& rng)
{
    const Index n = hg.NumVertices();
    std::vector<std::int32_t> part(static_cast<std::size_t>(n), 1);
    const Weight target0 = static_cast<Weight>(
        static_cast<double>(hg.TotalWeight(0)) * ratio);
    if (n == 0) {
        return part;
    }

    std::vector<double> score(static_cast<std::size_t>(n), 0.0);
    using Entry = std::pair<double, Index>;
    std::priority_queue<Entry> frontier;
    const Index seed = rng.UniformInt(0, n - 1);
    frontier.push({1.0, seed});
    score[static_cast<std::size_t>(seed)] = 1.0;

    Weight grown = 0;
    Index grown_count = 0;
    while (grown < target0 && grown_count < n) {
        Index v = -1;
        while (!frontier.empty()) {
            const Entry top = frontier.top();
            frontier.pop();
            if (part[static_cast<std::size_t>(top.second)] == 1 &&
                top.first >= score[static_cast<std::size_t>(top.second)]) {
                v = top.second;
                break;
            }
        }
        if (v == -1) {
            // Disconnected: restart from any remaining vertex.
            for (Index u = 0; u < n; ++u) {
                if (part[static_cast<std::size_t>(u)] == 1) {
                    v = u;
                    break;
                }
            }
            if (v == -1) {
                break;
            }
        }
        part[static_cast<std::size_t>(v)] = 0;
        grown += hg.VertexWeight(v, 0);
        ++grown_count;
        for (Index ik = hg.IncBegin(v); ik < hg.IncEnd(v); ++ik) {
            const Index e = hg.IncEdge(ik);
            const double s = static_cast<double>(hg.EdgeWeight(e)) /
                             static_cast<double>(hg.EdgeSize(e));
            for (Index pk = hg.EdgeBegin(e); pk < hg.EdgeEnd(e); ++pk) {
                const Index u = hg.Pin(pk);
                if (part[static_cast<std::size_t>(u)] == 1) {
                    score[static_cast<std::size_t>(u)] += s;
                    frontier.push({score[static_cast<std::size_t>(u)], u});
                }
            }
        }
    }
    return part;
}

/**
 * One multilevel 2-way partition of hg with the given ratio. All
 * randomness derives from node_seed (see MixSeed), never from
 * execution order.
 */
std::vector<std::int32_t>
MultilevelBisect(const Hypergraph& hg, double ratio,
                 const BisectContext& ctx, std::uint64_t node_seed)
{
    const PartitionerOptions& opts = ctx.opts;

    // ---- Coarsening chain ----------------------------------------------
    std::vector<Hypergraph> levels;
    std::vector<std::vector<Index>> projections; // fine->coarse per level
    {
        ScopedTimer timer(ctx.phases != nullptr ? &ctx.phases->coarsen
                                                : nullptr);
        Rng coarsen_rng(MixSeed(node_seed, kCoarsenSalt, 0));
        const Hypergraph* cur = &hg;
        CoarsenOptions copts;
        copts.big_edge_threshold = opts.big_edge_threshold;
        while (cur->NumVertices() > opts.coarsen_to) {
            CoarseningStep step = CoarsenOnce(*cur, coarsen_rng, copts);
            const double shrink =
                static_cast<double>(step.coarse.NumVertices()) /
                static_cast<double>(cur->NumVertices());
            if (shrink > opts.min_shrink) {
                break; // matching stalled; further levels are wasted work
            }
            projections.push_back(std::move(step.fine_to_coarse));
            levels.push_back(std::move(step.coarse));
            cur = &levels.back();
        }
    }

    // ---- Initial partition at the coarsest level -------------------------
    const Hypergraph& coarsest = levels.empty() ? hg : levels.back();
    std::vector<std::int32_t> best_part;
    {
        ScopedTimer timer(ctx.phases != nullptr ? &ctx.phases->initial
                                                : nullptr);
        const BisectionConstraints coarse_cons = MakeConstraints(
            coarsest, ratio, opts.epsilon, MaxVertexWeights(coarsest));
        const int tries = std::max(1, opts.initial_tries);
        std::vector<std::vector<std::int32_t>> parts(
            static_cast<std::size_t>(tries));
        std::vector<Weight> cuts(static_cast<std::size_t>(tries), 0);
        const auto run_try = [&](int t) {
            Rng rng(MixSeed(node_seed, kInitialSalt,
                            static_cast<std::uint64_t>(t)));
            std::vector<std::int32_t> part =
                GrowInitialBisection(coarsest, ratio, rng);
            FmOptions fm;
            fm.max_passes = opts.fm_passes;
            fm.fm_seconds = ctx.phases != nullptr
                                ? &ctx.phases->fm_refine
                                : nullptr;
            FmRefineBisection(coarsest, part, coarse_cons, fm);
            cuts[static_cast<std::size_t>(t)] =
                BisectionCut(coarsest, part);
            parts[static_cast<std::size_t>(t)] = std::move(part);
        };
        // The tries are independent streams; fan them out only when
        // coarsening stalled and the coarsest level is still big
        // enough that a try costs real work.
        if (ctx.pool != nullptr && tries > 1 &&
            coarsest.NumVertices() >= opts.parallel_grain) {
            std::vector<std::function<void()>> fns;
            fns.reserve(static_cast<std::size_t>(tries));
            for (int t = 0; t < tries; ++t) {
                fns.push_back([&run_try, t] { run_try(t); });
            }
            ctx.pool->RunSubtasks(std::move(fns));
        } else {
            for (int t = 0; t < tries; ++t) {
                run_try(t);
            }
        }
        // Fold in try order: the first minimal cut wins, exactly as a
        // serial loop would pick it.
        int best = 0;
        for (int t = 1; t < tries; ++t) {
            if (cuts[static_cast<std::size_t>(t)] <
                cuts[static_cast<std::size_t>(best)]) {
                best = t;
            }
        }
        best_part = std::move(parts[static_cast<std::size_t>(best)]);
    }

    // ---- Uncoarsening + refinement ---------------------------------------
    ScopedTimer timer(ctx.phases != nullptr ? &ctx.phases->refine
                                            : nullptr);
    std::vector<std::int32_t> part = std::move(best_part);
    for (std::size_t lvl = levels.size(); lvl-- > 0;) {
        const Hypergraph& fine = lvl == 0 ? hg : levels[lvl - 1];
        const std::vector<Index>& f2c = projections[lvl];
        std::vector<std::int32_t> fine_part(
            static_cast<std::size_t>(fine.NumVertices()));
        for (Index v = 0; v < fine.NumVertices(); ++v) {
            fine_part[static_cast<std::size_t>(v)] =
                part[static_cast<std::size_t>(
                    f2c[static_cast<std::size_t>(v)])];
        }
        const BisectionConstraints cons = MakeConstraints(
            fine, ratio, opts.epsilon, MaxVertexWeights(fine));
        FmOptions fm;
        fm.max_passes = opts.fm_passes;
        fm.fm_seconds = ctx.phases != nullptr ? &ctx.phases->fm_refine
                                              : nullptr;
        FmRefineBisection(fine, fine_part, cons, fm);
        part = std::move(fine_part);
    }
    return part;
}

/** A side sub-hypergraph induced by one half of a bisection. */
struct SubHypergraph {
    Hypergraph hg;
    std::vector<Index> to_parent; // sub vertex -> parent vertex
};

/**
 * Extracts both induced side sub-hypergraphs in a single pass over
 * vertices and edges (the former ExtractSide ran the whole scan twice
 * per bisection, and scanned each edge twice — once counting, once
 * pushing). Edges reduced below 2 pins on a side are dropped there.
 */
std::array<SubHypergraph, 2>
ExtractSides(const Hypergraph& hg, const std::vector<std::int32_t>& part)
{
    std::array<SubHypergraph, 2> sides;
    const Index n = hg.NumVertices();
    // Every vertex lands on exactly one side, so one parent->sub map
    // serves both (the side is recoverable from part[]).
    std::vector<Index> parent_to_sub(static_cast<std::size_t>(n));
    for (Index v = 0; v < n; ++v) {
        SubHypergraph& s =
            sides[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])];
        parent_to_sub[static_cast<std::size_t>(v)] =
            static_cast<Index>(s.to_parent.size());
        s.to_parent.push_back(v);
    }

    const int nc = hg.num_constraints();
    std::array<std::vector<Weight>, 2> vw;
    for (int side = 0; side < 2; ++side) {
        const auto& to_parent =
            sides[static_cast<std::size_t>(side)].to_parent;
        auto& w = vw[static_cast<std::size_t>(side)];
        w.resize(to_parent.size() * static_cast<std::size_t>(nc));
        for (std::size_t sv = 0; sv < to_parent.size(); ++sv) {
            for (int c = 0; c < nc; ++c) {
                w[sv * static_cast<std::size_t>(nc) +
                  static_cast<std::size_t>(c)] =
                    hg.VertexWeight(to_parent[sv], c);
            }
        }
    }

    std::array<std::vector<Index>, 2> pin_ptr{
        std::vector<Index>{0}, std::vector<Index>{0}};
    std::array<std::vector<Index>, 2> pins;
    std::array<std::vector<Weight>, 2> ew;
    std::array<std::vector<Index>, 2> scratch;
    for (Index e = 0; e < hg.NumEdges(); ++e) {
        scratch[0].clear();
        scratch[1].clear();
        for (Index k = hg.EdgeBegin(e); k < hg.EdgeEnd(e); ++k) {
            const Index v = hg.Pin(k);
            scratch[static_cast<std::size_t>(
                        part[static_cast<std::size_t>(v)])]
                .push_back(parent_to_sub[static_cast<std::size_t>(v)]);
        }
        // Pin conservation: the two sides partition the edge's pins.
        AZUL_CHECK(static_cast<Index>(scratch[0].size() +
                                      scratch[1].size()) ==
                   hg.EdgeSize(e));
        for (int side = 0; side < 2; ++side) {
            auto& sp = scratch[static_cast<std::size_t>(side)];
            if (sp.size() < 2) {
                continue; // internal or dangling on this side
            }
            auto& p = pins[static_cast<std::size_t>(side)];
            p.insert(p.end(), sp.begin(), sp.end());
            pin_ptr[static_cast<std::size_t>(side)].push_back(
                static_cast<Index>(p.size()));
            ew[static_cast<std::size_t>(side)].push_back(
                hg.EdgeWeight(e));
        }
    }

    for (int side = 0; side < 2; ++side) {
        const auto s = static_cast<std::size_t>(side);
        sides[s].hg =
            Hypergraph(nc, std::move(vw[s]), std::move(ew[s]),
                       std::move(pin_ptr[s]), std::move(pins[s]));
        sides[s].hg.BuildIncidence();
    }
    return sides;
}

/**
 * Recursive bisection assigning parts [part_base, part_base + k).
 * Each node is identified by (part_base, k) — unique across the tree
 * — and seeds its own RNG streams from that identity, so the result
 * does not depend on which worker runs it, or when.
 */
void
BisectNode(const Hypergraph& hg, const std::vector<Index>& to_parent,
           std::int32_t k, std::int32_t part_base,
           const BisectContext& ctx)
{
    std::vector<std::int32_t>& out = *ctx.out;
    if (k == 1) {
        for (Index v = 0; v < hg.NumVertices(); ++v) {
            out[static_cast<std::size_t>(
                to_parent[static_cast<std::size_t>(v)])] = part_base;
        }
        return;
    }
    const std::uint64_t node_seed =
        MixSeed(ctx.opts.seed, static_cast<std::uint64_t>(part_base),
                static_cast<std::uint64_t>(k));
    const std::int32_t k0 = k / 2;
    const std::int32_t k1 = k - k0;
    const double ratio =
        static_cast<double>(k0) / static_cast<double>(k);
    const std::vector<std::int32_t> part =
        MultilevelBisect(hg, ratio, ctx, node_seed);

    std::array<SubHypergraph, 2> sides;
    {
        ScopedTimer timer(ctx.phases != nullptr ? &ctx.phases->extract
                                                : nullptr);
        sides = ExtractSides(hg, part);
        // Translate sub indices through to the original vertex space.
        for (Index& v : sides[0].to_parent) {
            v = to_parent[static_cast<std::size_t>(v)];
        }
        for (Index& v : sides[1].to_parent) {
            v = to_parent[static_cast<std::size_t>(v)];
        }
    }

    const std::int32_t child_k[2] = {k0, k1};
    const std::int32_t child_base[2] = {part_base, part_base + k0};
    for (int side = 0; side < 2; ++side) {
        SubHypergraph& sub = sides[static_cast<std::size_t>(side)];
        const std::int32_t ck = child_k[side];
        const std::int32_t cb = child_base[side];
        // Fire-and-forget is safe: subtrees write disjoint out[]
        // entries and nothing runs after the recursion, so the only
        // join is the root's task-tree barrier.
        if (ctx.pool != nullptr && ck > 1 &&
            sub.hg.NumVertices() >= ctx.opts.parallel_grain) {
            ctx.pool->SubmitTask(
                [s = std::move(sub), ck, cb, &ctx]() mutable {
                    BisectNode(s.hg, s.to_parent, ck, cb, ctx);
                });
        } else {
            BisectNode(sub.hg, sub.to_parent, ck, cb, ctx);
        }
    }
}

} // namespace

std::vector<std::int32_t>
PartitionHypergraph(const Hypergraph& hg, std::int32_t k,
                    const PartitionerOptions& opts,
                    PartitionPhaseStats* phases)
{
    AZUL_CHECK(k >= 1);
    AZUL_CHECK(hg.HasIncidence());
    std::vector<std::int32_t> out(
        static_cast<std::size_t>(hg.NumVertices()), 0);
    if (k == 1) {
        return out;
    }
    std::vector<Index> identity(static_cast<std::size_t>(hg.NumVertices()));
    for (Index v = 0; v < hg.NumVertices(); ++v) {
        identity[static_cast<std::size_t>(v)] = v;
    }
    std::optional<ThreadPool> pool;
    if (opts.threads > 1) {
        pool.emplace(opts.threads);
    }
    BisectContext ctx{opts, pool.has_value() ? &*pool : nullptr, &out,
                      phases};
    if (ctx.pool != nullptr) {
        ctx.pool->RunTaskTree(
            [&hg, &identity, k, &ctx] { BisectNode(hg, identity, k, 0, ctx); });
    } else {
        BisectNode(hg, identity, k, 0, ctx);
    }
    return out;
}

} // namespace azul
