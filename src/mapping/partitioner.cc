#include "mapping/partitioner.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "mapping/coarsen.h"
#include "mapping/fm_refine.h"
#include "util/logging.h"
#include "util/rng.h"

namespace azul {

namespace {

/**
 * Builds per-side capacity limits for a bisection with target ratio r
 * (share of every constraint's weight going to side 0). Capacities get
 * epsilon slack plus one max-vertex-weight of headroom so a feasible
 * assignment always exists.
 */
BisectionConstraints
MakeConstraints(const Hypergraph& hg, double ratio, double epsilon)
{
    const int nc = hg.num_constraints();
    BisectionConstraints cons;
    cons.max_part0.resize(static_cast<std::size_t>(nc));
    cons.max_part1.resize(static_cast<std::size_t>(nc));
    for (int c = 0; c < nc; ++c) {
        const Weight total = hg.TotalWeight(c);
        Weight max_vw = 0;
        for (Index v = 0; v < hg.NumVertices(); ++v) {
            max_vw = std::max(max_vw, hg.VertexWeight(v, c));
        }
        cons.max_part0[static_cast<std::size_t>(c)] =
            static_cast<Weight>(std::ceil(static_cast<double>(total) *
                                          ratio * (1.0 + epsilon))) +
            max_vw;
        cons.max_part1[static_cast<std::size_t>(c)] =
            static_cast<Weight>(
                std::ceil(static_cast<double>(total) * (1.0 - ratio) *
                          (1.0 + epsilon))) +
            max_vw;
    }
    return cons;
}

/**
 * Greedy region growth: BFS-like expansion from a random seed,
 * repeatedly absorbing the frontier vertex with the highest
 * connectivity to the grown side, until side 0 reaches its target
 * share of constraint 0.
 */
std::vector<std::int32_t>
GrowInitialBisection(const Hypergraph& hg, double ratio, Rng& rng)
{
    const Index n = hg.NumVertices();
    std::vector<std::int32_t> part(static_cast<std::size_t>(n), 1);
    const Weight target0 = static_cast<Weight>(
        static_cast<double>(hg.TotalWeight(0)) * ratio);
    if (n == 0) {
        return part;
    }

    std::vector<double> score(static_cast<std::size_t>(n), 0.0);
    using Entry = std::pair<double, Index>;
    std::priority_queue<Entry> frontier;
    const Index seed = rng.UniformInt(0, n - 1);
    frontier.push({1.0, seed});
    score[static_cast<std::size_t>(seed)] = 1.0;

    Weight grown = 0;
    Index grown_count = 0;
    while (grown < target0 && grown_count < n) {
        Index v = -1;
        while (!frontier.empty()) {
            const Entry top = frontier.top();
            frontier.pop();
            if (part[static_cast<std::size_t>(top.second)] == 1 &&
                top.first >= score[static_cast<std::size_t>(top.second)]) {
                v = top.second;
                break;
            }
        }
        if (v == -1) {
            // Disconnected: restart from any remaining vertex.
            for (Index u = 0; u < n; ++u) {
                if (part[static_cast<std::size_t>(u)] == 1) {
                    v = u;
                    break;
                }
            }
            if (v == -1) {
                break;
            }
        }
        part[static_cast<std::size_t>(v)] = 0;
        grown += hg.VertexWeight(v, 0);
        ++grown_count;
        for (Index ik = hg.IncBegin(v); ik < hg.IncEnd(v); ++ik) {
            const Index e = hg.IncEdge(ik);
            const double s = static_cast<double>(hg.EdgeWeight(e)) /
                             static_cast<double>(hg.EdgeSize(e));
            for (Index pk = hg.EdgeBegin(e); pk < hg.EdgeEnd(e); ++pk) {
                const Index u = hg.Pin(pk);
                if (part[static_cast<std::size_t>(u)] == 1) {
                    score[static_cast<std::size_t>(u)] += s;
                    frontier.push({score[static_cast<std::size_t>(u)], u});
                }
            }
        }
    }
    return part;
}

/** One multilevel 2-way partition of hg with the given ratio. */
std::vector<std::int32_t>
MultilevelBisect(const Hypergraph& hg, double ratio,
                 const PartitionerOptions& opts, Rng& rng)
{
    // ---- Coarsening chain ----------------------------------------------
    std::vector<Hypergraph> levels;
    std::vector<std::vector<Index>> projections; // fine->coarse per level
    const Hypergraph* cur = &hg;
    CoarsenOptions copts;
    copts.big_edge_threshold = opts.big_edge_threshold;
    while (cur->NumVertices() > opts.coarsen_to) {
        CoarseningStep step = CoarsenOnce(*cur, rng, copts);
        const double shrink =
            static_cast<double>(step.coarse.NumVertices()) /
            static_cast<double>(cur->NumVertices());
        if (shrink > opts.min_shrink) {
            break; // matching stalled; further levels are wasted work
        }
        projections.push_back(std::move(step.fine_to_coarse));
        levels.push_back(std::move(step.coarse));
        cur = &levels.back();
    }

    // ---- Initial partition at the coarsest level -------------------------
    const Hypergraph& coarsest = levels.empty() ? hg : levels.back();
    const BisectionConstraints coarse_cons =
        MakeConstraints(coarsest, ratio, opts.epsilon);
    std::vector<std::int32_t> best_part;
    Weight best_cut = 0;
    for (int t = 0; t < opts.initial_tries; ++t) {
        std::vector<std::int32_t> part =
            GrowInitialBisection(coarsest, ratio, rng);
        FmOptions fm;
        fm.max_passes = opts.fm_passes;
        FmRefineBisection(coarsest, part, coarse_cons, fm);
        const Weight cut = BisectionCut(coarsest, part);
        if (best_part.empty() || cut < best_cut) {
            best_cut = cut;
            best_part = std::move(part);
        }
    }

    // ---- Uncoarsening + refinement ---------------------------------------
    std::vector<std::int32_t> part = std::move(best_part);
    for (std::size_t lvl = levels.size(); lvl-- > 0;) {
        const Hypergraph& fine = lvl == 0 ? hg : levels[lvl - 1];
        const std::vector<Index>& f2c = projections[lvl];
        std::vector<std::int32_t> fine_part(
            static_cast<std::size_t>(fine.NumVertices()));
        for (Index v = 0; v < fine.NumVertices(); ++v) {
            fine_part[static_cast<std::size_t>(v)] =
                part[static_cast<std::size_t>(
                    f2c[static_cast<std::size_t>(v)])];
        }
        const BisectionConstraints cons =
            MakeConstraints(fine, ratio, opts.epsilon);
        FmOptions fm;
        fm.max_passes = opts.fm_passes;
        FmRefineBisection(fine, fine_part, cons, fm);
        part = std::move(fine_part);
    }
    if (levels.empty()) {
        // No coarsening happened; `part` is already at full
        // resolution (computed on hg directly above).
    }
    return part;
}

/** Extracts the sub-hypergraph induced by the vertices with flag set. */
struct SubHypergraph {
    Hypergraph hg;
    std::vector<Index> to_parent; // sub vertex -> parent vertex
};

SubHypergraph
ExtractSide(const Hypergraph& hg, const std::vector<std::int32_t>& part,
            std::int32_t side)
{
    SubHypergraph sub;
    std::vector<Index> parent_to_sub(
        static_cast<std::size_t>(hg.NumVertices()), Index{-1});
    for (Index v = 0; v < hg.NumVertices(); ++v) {
        if (part[static_cast<std::size_t>(v)] == side) {
            parent_to_sub[static_cast<std::size_t>(v)] =
                static_cast<Index>(sub.to_parent.size());
            sub.to_parent.push_back(v);
        }
    }
    const int nc = hg.num_constraints();
    std::vector<Weight> vw(sub.to_parent.size() *
                               static_cast<std::size_t>(nc));
    for (std::size_t sv = 0; sv < sub.to_parent.size(); ++sv) {
        for (int c = 0; c < nc; ++c) {
            vw[sv * static_cast<std::size_t>(nc) +
               static_cast<std::size_t>(c)] =
                hg.VertexWeight(sub.to_parent[sv], c);
        }
    }
    std::vector<Index> pin_ptr{0};
    std::vector<Index> pins;
    std::vector<Weight> ew;
    for (Index e = 0; e < hg.NumEdges(); ++e) {
        Index count = 0;
        for (Index k = hg.EdgeBegin(e); k < hg.EdgeEnd(e); ++k) {
            if (parent_to_sub[static_cast<std::size_t>(hg.Pin(k))] != -1) {
                ++count;
            }
        }
        if (count < 2) {
            continue;
        }
        for (Index k = hg.EdgeBegin(e); k < hg.EdgeEnd(e); ++k) {
            const Index sv =
                parent_to_sub[static_cast<std::size_t>(hg.Pin(k))];
            if (sv != -1) {
                pins.push_back(sv);
            }
        }
        pin_ptr.push_back(static_cast<Index>(pins.size()));
        ew.push_back(hg.EdgeWeight(e));
    }
    sub.hg = Hypergraph(nc, std::move(vw), std::move(ew),
                        std::move(pin_ptr), std::move(pins));
    sub.hg.BuildIncidence();
    return sub;
}

/** Recursive bisection assigning parts [part_base, part_base + k). */
void
RecursiveBisect(const Hypergraph& hg, const std::vector<Index>& to_parent,
                std::int32_t k, std::int32_t part_base,
                const PartitionerOptions& opts, Rng& rng,
                std::vector<std::int32_t>& out)
{
    if (k == 1) {
        for (Index v = 0; v < hg.NumVertices(); ++v) {
            out[static_cast<std::size_t>(
                to_parent[static_cast<std::size_t>(v)])] = part_base;
        }
        return;
    }
    const std::int32_t k0 = k / 2;
    const std::int32_t k1 = k - k0;
    const double ratio =
        static_cast<double>(k0) / static_cast<double>(k);
    const std::vector<std::int32_t> part =
        MultilevelBisect(hg, ratio, opts, rng);

    SubHypergraph side0 = ExtractSide(hg, part, 0);
    SubHypergraph side1 = ExtractSide(hg, part, 1);
    // Translate sub indices through to the original vertex space.
    for (Index& v : side0.to_parent) {
        v = to_parent[static_cast<std::size_t>(v)];
    }
    for (Index& v : side1.to_parent) {
        v = to_parent[static_cast<std::size_t>(v)];
    }
    RecursiveBisect(side0.hg, side0.to_parent, k0, part_base, opts, rng,
                    out);
    RecursiveBisect(side1.hg, side1.to_parent, k1, part_base + k0, opts,
                    rng, out);
}

} // namespace

std::vector<std::int32_t>
PartitionHypergraph(const Hypergraph& hg, std::int32_t k,
                    const PartitionerOptions& opts)
{
    AZUL_CHECK(k >= 1);
    AZUL_CHECK(hg.HasIncidence());
    std::vector<std::int32_t> out(
        static_cast<std::size_t>(hg.NumVertices()), 0);
    if (k == 1) {
        return out;
    }
    Rng rng(opts.seed);
    std::vector<Index> identity(static_cast<std::size_t>(hg.NumVertices()));
    for (Index v = 0; v < hg.NumVertices(); ++v) {
        identity[static_cast<std::size_t>(v)] = v;
    }
    RecursiveBisect(hg, identity, k, 0, opts, rng, out);
    return out;
}

} // namespace azul
