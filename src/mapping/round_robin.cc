#include "mapping/round_robin.h"

namespace azul {

DataMapping
RoundRobinMapper::Map(const MappingProblem& prob, std::int32_t num_tiles)
{
    AZUL_CHECK(prob.a != nullptr);
    AZUL_CHECK(num_tiles > 0);
    DataMapping m;
    m.num_tiles = num_tiles;
    m.a_nnz_tile.resize(static_cast<std::size_t>(prob.a->nnz()));
    for (std::size_t i = 0; i < m.a_nnz_tile.size(); ++i) {
        m.a_nnz_tile[i] = static_cast<TileId>(i % num_tiles);
    }
    if (prob.l != nullptr) {
        m.l_nnz_tile.resize(static_cast<std::size_t>(prob.l->nnz()));
        for (std::size_t i = 0; i < m.l_nnz_tile.size(); ++i) {
            m.l_nnz_tile[i] = static_cast<TileId>(i % num_tiles);
        }
    }
    m.vec_tile.resize(static_cast<std::size_t>(prob.n()));
    for (std::size_t i = 0; i < m.vec_tile.size(); ++i) {
        m.vec_tile[i] = static_cast<TileId>(i % num_tiles);
    }
    return m;
}

} // namespace azul
