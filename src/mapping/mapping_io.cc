#include "mapping/mapping_io.h"

#include <fstream>
#include <istream>
#include <ostream>

namespace azul {

namespace {

void
WriteSection(std::ostream& out, const char* name,
             const std::vector<TileId>& tiles)
{
    out << name << " " << tiles.size() << "\n";
    for (std::size_t i = 0; i < tiles.size(); ++i) {
        out << tiles[i]
            << ((i + 1) % 16 == 0 || i + 1 == tiles.size() ? '\n'
                                                           : ' ');
    }
}

std::vector<TileId>
ReadSection(std::istream& in, const std::string& expected_name,
            std::int32_t num_tiles)
{
    std::string name;
    std::size_t count = 0;
    if (!(in >> name >> count) || name != expected_name) {
        throw AzulError("mapping file: expected section '" +
                        expected_name + "', got '" + name + "'");
    }
    std::vector<TileId> tiles(count);
    for (std::size_t i = 0; i < count; ++i) {
        if (!(in >> tiles[i])) {
            throw AzulError("mapping file: truncated section '" +
                            expected_name + "'");
        }
        if (tiles[i] < 0 || tiles[i] >= num_tiles) {
            throw AzulError("mapping file: tile id out of range in '" +
                            expected_name + "'");
        }
    }
    return tiles;
}

} // namespace

void
WriteMapping(const DataMapping& mapping, std::ostream& out)
{
    out << "azul-mapping v1\n";
    out << "num_tiles " << mapping.num_tiles << "\n";
    WriteSection(out, "a", mapping.a_nnz_tile);
    WriteSection(out, "l", mapping.l_nnz_tile);
    WriteSection(out, "vec", mapping.vec_tile);
}

void
SaveMapping(const DataMapping& mapping, const std::string& path)
{
    std::ofstream out(path);
    if (!out) {
        throw AzulError("cannot open '" + path + "' for writing");
    }
    WriteMapping(mapping, out);
    if (!out) {
        throw AzulError("write to '" + path + "' failed");
    }
}

DataMapping
ReadMapping(std::istream& in)
{
    std::string magic;
    std::string version;
    // Skip leading comment lines.
    while (in.peek() == '#') {
        std::string comment;
        std::getline(in, comment);
    }
    if (!(in >> magic >> version) || magic != "azul-mapping" ||
        version != "v1") {
        throw AzulError("not an azul-mapping v1 file");
    }
    std::string key;
    DataMapping mapping;
    if (!(in >> key >> mapping.num_tiles) || key != "num_tiles" ||
        mapping.num_tiles <= 0) {
        throw AzulError("mapping file: bad num_tiles");
    }
    mapping.a_nnz_tile = ReadSection(in, "a", mapping.num_tiles);
    mapping.l_nnz_tile = ReadSection(in, "l", mapping.num_tiles);
    mapping.vec_tile = ReadSection(in, "vec", mapping.num_tiles);
    return mapping;
}

DataMapping
LoadMapping(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        throw AzulError("cannot open mapping file '" + path + "'");
    }
    return ReadMapping(in);
}

} // namespace azul
