/**
 * @file
 * Multilevel coarsening by heavy-connectivity matching.
 *
 * Pairs of vertices that share many (small, heavy) hyperedges are
 * contracted, shrinking the hypergraph while preserving its cut
 * structure — the standard first phase of multilevel partitioners
 * (PaToH, hMETIS).
 */
#ifndef AZUL_MAPPING_COARSEN_H_
#define AZUL_MAPPING_COARSEN_H_

#include "mapping/hypergraph.h"
#include "util/rng.h"

namespace azul {

/** Knobs for one coarsening step. */
struct CoarsenOptions {
    /** Edges with more pins than this are skipped when scoring
     *  (they contribute little locality signal and cost a lot). */
    Index big_edge_threshold = 256;
};

/** Result of one coarsening step. */
struct CoarseningStep {
    Hypergraph coarse;
    /** fine vertex -> coarse vertex. */
    std::vector<Index> fine_to_coarse;
};

/**
 * One level of heavy-connectivity matching + contraction. The input
 * must have incidence built. Identical coarse hyperedges are merged
 * (weights summed) and single-pin edges dropped.
 */
CoarseningStep CoarsenOnce(const Hypergraph& hg, Rng& rng,
                           const CoarsenOptions& opts = {});

} // namespace azul

#endif // AZUL_MAPPING_COARSEN_H_
