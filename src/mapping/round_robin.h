/**
 * @file
 * Round-Robin mapping — Dalorex's strategy (Sec III): enumerate the
 * nonzeros of each structure in row-major order and assign nonzero i
 * to tile i mod P. Sparsity-pattern agnostic; the paper's low-locality
 * baseline.
 */
#ifndef AZUL_MAPPING_ROUND_ROBIN_H_
#define AZUL_MAPPING_ROUND_ROBIN_H_

#include "mapping/mapping.h"

namespace azul {

/** Round-Robin (Dalorex) mapper. */
class RoundRobinMapper final : public Mapper {
  public:
    std::string name() const override { return "round-robin"; }
    DataMapping Map(const MappingProblem& prob,
                    std::int32_t num_tiles) override;
};

} // namespace azul

#endif // AZUL_MAPPING_ROUND_ROBIN_H_
