/**
 * @file
 * SparseP mapping — the coordinate-based 2-D chunking of Sec VI-C:
 * split the matrix into √P column chunks of equal nonzero count, then
 * split each column chunk into √P row chunks of equal nonzero count,
 * giving P coordinate-contiguous partitions.
 */
#ifndef AZUL_MAPPING_SPARSEP_H_
#define AZUL_MAPPING_SPARSEP_H_

#include "mapping/mapping.h"

namespace azul {

/** SparseP coordinate-based mapper. */
class SparsePMapper final : public Mapper {
  public:
    std::string name() const override { return "sparsep"; }
    DataMapping Map(const MappingProblem& prob,
                    std::int32_t num_tiles) override;
};

} // namespace azul

#endif // AZUL_MAPPING_SPARSEP_H_
