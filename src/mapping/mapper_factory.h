/**
 * @file
 * Factory over the four mapping strategies compared in the paper
 * (Sec VI-C, Fig 23): Round-Robin (Dalorex), Block (Tascade / MPI),
 * SparseP (coordinate-based 2-D chunks), and Azul's hypergraph
 * partitioning.
 */
#ifndef AZUL_MAPPING_MAPPER_FACTORY_H_
#define AZUL_MAPPING_MAPPER_FACTORY_H_

#include <memory>
#include <string>

#include "mapping/azul_mapper.h"
#include "mapping/mapping.h"

namespace azul {

/** The mapping strategies of Fig 23. */
enum class MapperKind {
    kRoundRobin,
    kBlock,
    kSparseP,
    kAzul,
};

/** Returns the strategy's display name. */
std::string MapperKindName(MapperKind kind);

/** Instantiates a mapper; azul_opts applies to kAzul only. */
std::unique_ptr<Mapper> MakeMapper(MapperKind kind,
                                   const AzulMapperOptions& azul_opts = {});

} // namespace azul

#endif // AZUL_MAPPING_MAPPER_FACTORY_H_
