/**
 * @file
 * Mapping serialization. Azul's mapping is expensive to compute
 * (Sec VI-D) and the paper's amortization argument extends across
 * program runs: a simulation campaign reuses one mapping for every
 * run over the same sparsity pattern. These helpers persist a
 * DataMapping to a small self-describing text format.
 *
 * Format (line-oriented, '#' comments allowed at the top):
 *   azul-mapping v1
 *   num_tiles <P>
 *   a <count>    followed by <count> whitespace-separated tile ids
 *   l <count>    followed by <count> tile ids (count may be 0)
 *   vec <count>  followed by <count> tile ids
 */
#ifndef AZUL_MAPPING_MAPPING_IO_H_
#define AZUL_MAPPING_MAPPING_IO_H_

#include <iosfwd>
#include <string>

#include "mapping/mapping.h"

namespace azul {

/** Writes a mapping to a stream. */
void WriteMapping(const DataMapping& mapping, std::ostream& out);

/** Writes a mapping to a file; throws AzulError on I/O failure. */
void SaveMapping(const DataMapping& mapping, const std::string& path);

/** Reads a mapping from a stream; throws AzulError on bad input. */
DataMapping ReadMapping(std::istream& in);

/** Reads a mapping from a file; throws AzulError on failure. */
DataMapping LoadMapping(const std::string& path);

} // namespace azul

#endif // AZUL_MAPPING_MAPPING_IO_H_
