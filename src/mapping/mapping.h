/**
 * @file
 * Data-mapping abstractions (Sec IV of the paper).
 *
 * A mapping assigns every operand value — each nonzero of A, each
 * nonzero of the preconditioner factor L, and each vector slot — to a
 * tile. Vector slots are per-index homes shared by all of PCG's dense
 * vectors (x, r, p, z, b and SpMV partial outputs), because those
 * vectors are used elementwise and co-locating them is strictly
 * better.
 *
 * The mapping fully determines inter-tile traffic (Sec IV-A): vector
 * element j must be multicast to every tile holding a column-j
 * nonzero, and every tile holding row-i nonzeros produces a partial
 * sum that must reach y_i's home.
 */
#ifndef AZUL_MAPPING_MAPPING_H_
#define AZUL_MAPPING_MAPPING_H_

#include <memory>
#include <string>
#include <vector>

#include "sparse/csr.h"

namespace azul {

/** Tile id within the machine, in [0, num_tiles). */
using TileId = std::int32_t;

/** The operand structures being mapped. */
struct MappingProblem {
    const CsrMatrix* a = nullptr; //!< system matrix (required)
    const CsrMatrix* l = nullptr; //!< lower factor (optional)

    Index n() const { return a->rows(); }
};

/** Assignment of every operand value to a tile. */
struct DataMapping {
    std::int32_t num_tiles = 0;
    /** Tile of each A nonzero, in CSR order. */
    std::vector<TileId> a_nnz_tile;
    /** Tile of each L nonzero, in CSR order (empty if no L). */
    std::vector<TileId> l_nnz_tile;
    /** Home tile of vector slot i (all dense vectors share homes). */
    std::vector<TileId> vec_tile;

    /** Validates sizes and tile-id ranges against the problem. */
    void Validate(const MappingProblem& prob) const;

    /** Number of operand values (matrix + vector) per tile. */
    std::vector<Index> TileLoads() const;
};

/** Mapping algorithm interface. */
class Mapper {
  public:
    virtual ~Mapper() = default;

    /** Human-readable algorithm name, e.g. "round-robin". */
    virtual std::string name() const = 0;

    /** Produces a mapping of the problem onto num_tiles tiles. */
    virtual DataMapping Map(const MappingProblem& prob,
                            std::int32_t num_tiles) = 0;
};

/**
 * Static traffic estimate (message count) for the PCG kernels under a
 * mapping, using the communication-set model of Sec IV-B: a set
 * spanning N tiles induces N-1 messages. Counts one SpMV over A plus,
 * if L is present, one forward and one backward SpTRSV.
 */
struct TrafficEstimate {
    double spmv_messages = 0.0;
    double sptrsv_messages = 0.0;

    double total() const { return spmv_messages + sptrsv_messages; }
};
TrafficEstimate EstimateTraffic(const MappingProblem& prob,
                                const DataMapping& mapping);

} // namespace azul

#endif // AZUL_MAPPING_MAPPING_H_
