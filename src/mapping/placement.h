/**
 * @file
 * Partition→tile placement. Recursive bisection gives hierarchically
 * related part ids (siblings share a recursion subtree), so placing
 * contiguous id ranges in spatially compact torus regions (Z-order)
 * keeps communicating parts close. Row-major placement is the naive
 * fallback and an ablation point.
 */
#ifndef AZUL_MAPPING_PLACEMENT_H_
#define AZUL_MAPPING_PLACEMENT_H_

#include <cstdint>
#include <vector>

#include "util/common.h"

namespace azul {

/** Placement strategies for laying parts onto the 2-D torus. */
enum class PlacementStrategy {
    kRowMajor, //!< part p -> tile p
    kZOrder,   //!< Morton order (requires power-of-two grid dims)
};

/**
 * Returns tile id (row-major index into a width x height grid) for
 * each part in [0, width*height). Z-order falls back to row-major
 * when a dimension is not a power of two.
 */
std::vector<std::int32_t> PlaceParts(std::int32_t width,
                                     std::int32_t height,
                                     PlacementStrategy strategy);

} // namespace azul

#endif // AZUL_MAPPING_PLACEMENT_H_
