#include "mapping/mapping_cache.h"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <type_traits>

#include "mapping/mapping_io.h"
#include "util/common.h"
#include "util/logging.h"

namespace azul {

namespace {

/** Incremental FNV-1a 64 over heterogeneous fields. */
class Fnv1a {
  public:
    void
    Bytes(const void* data, std::size_t n)
    {
        const auto* p = static_cast<const unsigned char*>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h_ ^= p[i];
            h_ *= 0x0000'0100'0000'01b3ULL;
        }
    }

    template <typename T>
    void
    Pod(const T& v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        Bytes(&v, sizeof(v));
    }

    template <typename T>
    void
    Span(const std::vector<T>& v)
    {
        // Length first, so adjacent fields cannot alias.
        Pod(static_cast<std::uint64_t>(v.size()));
        Bytes(v.data(), v.size() * sizeof(T));
    }

    void
    Str(const std::string& s)
    {
        Pod(static_cast<std::uint64_t>(s.size()));
        Bytes(s.data(), s.size());
    }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 0xcbf2'9ce4'8422'2325ULL; // FNV offset basis
};

void
HashStructure(Fnv1a& h, const CsrMatrix* m)
{
    if (m == nullptr) {
        h.Pod(std::uint64_t{0});
        return;
    }
    h.Pod(std::uint64_t{1});
    h.Pod(m->rows());
    h.Pod(m->cols());
    h.Span(m->row_ptr());
    h.Span(m->col_idx());
}

} // namespace

std::uint64_t
StructureHash(const CsrMatrix& m)
{
    Fnv1a h;
    h.Str("azul-structure-v1");
    HashStructure(h, &m);
    return h.value();
}

std::uint64_t
MappingCacheKey(const MappingProblem& prob,
                const std::string& mapper_name, std::int32_t num_tiles,
                const AzulMapperOptions& opts)
{
    Fnv1a h;
    h.Str("azul-mapping-cache-v1");
    h.Str(mapper_name);
    h.Pod(num_tiles);
    HashStructure(h, prob.a);
    HashStructure(h, prob.l);
    // Mapper options that change the result. Deliberately absent:
    // partitioner.threads and partitioner.parallel_grain (bit-identical
    // output at any thread count) and all numeric matrix values.
    h.Pod(opts.time_quantiles);
    h.Pod(opts.row_edge_weight);
    h.Pod(opts.col_edge_weight);
    h.Pod(opts.vector_slot_weight);
    h.Pod(static_cast<std::int32_t>(opts.placement));
    h.Pod(opts.grid_width);
    h.Pod(opts.grid_height);
    const PartitionerOptions& p = opts.partitioner;
    h.Pod(p.epsilon);
    h.Pod(p.coarsen_to);
    h.Pod(p.min_shrink);
    h.Pod(p.initial_tries);
    h.Pod(p.fm_passes);
    h.Pod(p.big_edge_threshold);
    h.Pod(p.seed);
    return h.value();
}

std::string
MappingCache::DirFromEnv()
{
    const char* dir = std::getenv("AZUL_MAPPING_CACHE");
    return dir != nullptr ? std::string(dir) : std::string();
}

std::string
MappingCache::PathForKey(std::uint64_t key) const
{
    std::ostringstream name;
    name << "azul-mapping-" << std::hex << key << ".map";
    return (std::filesystem::path(dir_) / name.str()).string();
}

std::optional<DataMapping>
MappingCache::TryLoad(std::uint64_t key, const MappingProblem& prob,
                      std::int32_t num_tiles)
{
    if (!enabled()) {
        ++misses_;
        return std::nullopt;
    }
    const std::string path = PathForKey(key);
    try {
        DataMapping mapping = LoadMapping(path);
        AZUL_CHECK(mapping.num_tiles == num_tiles);
        mapping.Validate(prob);
        ++hits_;
        return mapping;
    } catch (const AzulError&) {
        // Absent, torn, or mismatched (hash collision) entry: recompute.
        ++misses_;
        return std::nullopt;
    }
}

bool
MappingCache::Store(std::uint64_t key, const DataMapping& mapping)
{
    if (!enabled()) {
        return false;
    }
    const std::string path = PathForKey(key);
    const std::string tmp = path + ".tmp";
    try {
        std::error_code ec;
        std::filesystem::create_directories(dir_, ec);
        SaveMapping(mapping, tmp);
        std::filesystem::rename(tmp, path);
        return true;
    } catch (const std::exception& e) {
        AZUL_LOG(kWarn) << "mapping cache: failed to store " << path
                        << ": " << e.what();
        std::error_code ec;
        std::filesystem::remove(tmp, ec);
        return false;
    }
}

} // namespace azul
