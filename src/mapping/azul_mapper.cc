#include "mapping/azul_mapper.h"

#include <cmath>

#include "mapping/quantiles.h"
#include "solver/levels.h"
#include "util/logging.h"

namespace azul {

namespace {

/**
 * Appends row and column hyperedges of matrix m to the edge lists.
 * Vertex ids of m's nonzeros start at nnz_base; vector slots start at
 * vec_base. Row edge i additionally pins slot i (the reduction
 * destination); column edge j pins slot j (the multicast source).
 */
void
AppendMatrixEdges(const CsrMatrix& m, Index nnz_base, Index vec_base,
                  Weight row_weight, Weight col_weight,
                  std::vector<Index>& pin_ptr, std::vector<Index>& pins,
                  std::vector<Weight>& eweights)
{
    // Row edges.
    for (Index r = 0; r < m.rows(); ++r) {
        if (m.RowNnz(r) == 0) {
            continue;
        }
        for (Index k = m.RowBegin(r); k < m.RowEnd(r); ++k) {
            pins.push_back(nnz_base + k);
        }
        pins.push_back(vec_base + r);
        pin_ptr.push_back(static_cast<Index>(pins.size()));
        eweights.push_back(row_weight);
    }
    // Column edges (walk the transpose pattern).
    std::vector<std::vector<Index>> col_pins(
        static_cast<std::size_t>(m.cols()));
    for (Index r = 0; r < m.rows(); ++r) {
        for (Index k = m.RowBegin(r); k < m.RowEnd(r); ++k) {
            col_pins[static_cast<std::size_t>(m.col_idx()[k])].push_back(
                nnz_base + k);
        }
    }
    for (Index c = 0; c < m.cols(); ++c) {
        const auto& cp = col_pins[static_cast<std::size_t>(c)];
        if (cp.empty()) {
            continue;
        }
        pins.insert(pins.end(), cp.begin(), cp.end());
        pins.push_back(vec_base + c);
        pin_ptr.push_back(static_cast<Index>(pins.size()));
        eweights.push_back(col_weight);
    }
}

} // namespace

Hypergraph
AzulMapper::BuildHypergraph(const MappingProblem& prob) const
{
    AZUL_CHECK(prob.a != nullptr);
    const Index nnz_a = prob.a->nnz();
    const Index nnz_l = prob.l != nullptr ? prob.l->nnz() : 0;
    const Index n = prob.n();
    const Index num_vertices = nnz_a + nnz_l + n;

    const int q =
        prob.l != nullptr && opts_.time_quantiles > 1
            ? opts_.time_quantiles
            : 0;
    const int nc = 1 + q;

    // ---- Vertex weights ---------------------------------------------------
    std::vector<Weight> vweights(
        static_cast<std::size_t>(num_vertices) *
            static_cast<std::size_t>(nc),
        0);
    const auto wslot = [&vweights, nc](Index v, int c) -> Weight& {
        return vweights[static_cast<std::size_t>(v) *
                            static_cast<std::size_t>(nc) +
                        static_cast<std::size_t>(c)];
    };
    for (Index v = 0; v < nnz_a + nnz_l; ++v) {
        wslot(v, 0) = 1;
    }
    for (Index v = nnz_a + nnz_l; v < num_vertices; ++v) {
        wslot(v, 0) = opts_.vector_slot_weight;
    }

    // Temporal quantiles over the SpTRSV dependence depth: each L
    // nonzero's operation executes when its row's turn comes in the
    // forward solve, so its depth is the row's level.
    if (q > 0) {
        const LevelSets lower = ComputeLowerLevels(*prob.l);
        std::vector<Index> depth(static_cast<std::size_t>(nnz_l));
        for (Index r = 0; r < prob.l->rows(); ++r) {
            for (Index k = prob.l->RowBegin(r); k < prob.l->RowEnd(r);
                 ++k) {
                depth[static_cast<std::size_t>(k)] =
                    lower.level_of[static_cast<std::size_t>(r)];
            }
        }
        const std::vector<int> bucket = QuantileBuckets(depth, q);
        for (Index k = 0; k < nnz_l; ++k) {
            wslot(nnz_a + k,
                  1 + bucket[static_cast<std::size_t>(k)]) = 1;
        }
    }

    // ---- Hyperedges -------------------------------------------------------
    std::vector<Index> pin_ptr{0};
    std::vector<Index> pins;
    std::vector<Weight> eweights;
    const Index vec_base = nnz_a + nnz_l;
    AppendMatrixEdges(*prob.a, 0, vec_base, opts_.row_edge_weight,
                      opts_.col_edge_weight, pin_ptr, pins, eweights);
    if (prob.l != nullptr) {
        AppendMatrixEdges(*prob.l, nnz_a, vec_base,
                          opts_.row_edge_weight, opts_.col_edge_weight,
                          pin_ptr, pins, eweights);
    }

    Hypergraph hg(nc, std::move(vweights), std::move(eweights),
                  std::move(pin_ptr), std::move(pins));
    hg.BuildIncidence();
    return hg;
}

DataMapping
AzulMapper::Map(const MappingProblem& prob, std::int32_t num_tiles)
{
    AZUL_CHECK(prob.a != nullptr);
    AZUL_CHECK(num_tiles > 0);

    Hypergraph hg = BuildHypergraph(prob);
    AZUL_LOG(kInfo) << "azul mapper: hypergraph with "
                    << hg.NumVertices() << " vertices, " << hg.NumEdges()
                    << " edges, " << hg.NumPins() << " pins, "
                    << hg.num_constraints() << " constraints";

    const std::vector<std::int32_t> part =
        PartitionHypergraph(hg, num_tiles, opts_.partitioner);

    // Derive the torus grid and the part -> tile placement.
    std::int32_t width = opts_.grid_width;
    std::int32_t height = opts_.grid_height;
    if (width == 0 || height == 0) {
        width = static_cast<std::int32_t>(
            std::round(std::sqrt(static_cast<double>(num_tiles))));
        while (width > 1 && num_tiles % width != 0) {
            --width;
        }
        height = num_tiles / width;
    }
    AZUL_CHECK_MSG(width * height == num_tiles,
                   "grid " << width << "x" << height
                           << " does not cover " << num_tiles
                           << " tiles");
    const std::vector<std::int32_t> part_to_tile =
        PlaceParts(width, height, opts_.placement);

    const Index nnz_a = prob.a->nnz();
    const Index nnz_l = prob.l != nullptr ? prob.l->nnz() : 0;
    DataMapping m;
    m.num_tiles = num_tiles;
    m.a_nnz_tile.resize(static_cast<std::size_t>(nnz_a));
    for (Index k = 0; k < nnz_a; ++k) {
        m.a_nnz_tile[static_cast<std::size_t>(k)] =
            part_to_tile[static_cast<std::size_t>(
                part[static_cast<std::size_t>(k)])];
    }
    m.l_nnz_tile.resize(static_cast<std::size_t>(nnz_l));
    for (Index k = 0; k < nnz_l; ++k) {
        m.l_nnz_tile[static_cast<std::size_t>(k)] =
            part_to_tile[static_cast<std::size_t>(
                part[static_cast<std::size_t>(nnz_a + k)])];
    }
    m.vec_tile.resize(static_cast<std::size_t>(prob.n()));
    for (Index i = 0; i < prob.n(); ++i) {
        m.vec_tile[static_cast<std::size_t>(i)] =
            part_to_tile[static_cast<std::size_t>(
                part[static_cast<std::size_t>(nnz_a + nnz_l + i)])];
    }
    return m;
}

} // namespace azul
