/**
 * @file
 * Persistent on-disk cache of computed data mappings.
 *
 * Mapping is the dominant preprocessing cost (Sec VI-D), and the
 * paper's amortization argument extends across program runs: a
 * simulation campaign (benchmark sweeps, parameter studies) solves
 * over the same sparsity pattern again and again. The cache keys a
 * serialized DataMapping (mapping_io format) by a content hash of
 * everything the mapping depends on:
 *
 *   - the matrix *structure* of A and L (row_ptr/col_idx; numeric
 *     values do not influence any mapper),
 *   - the mapper kind (by name) and tile count,
 *   - every AzulMapperOptions knob that changes the result, including
 *     the partitioner quality knobs and seed.
 *
 * Host-performance knobs (`threads`, `parallel_grain`) are excluded:
 * the partitioner is bit-identical at any thread count, so they
 * cannot change the mapping. Caveat: the key covers option *values*,
 * not algorithm *code* — after changing partitioner/mapper internals,
 * stale caches must be deleted manually (see docs/MAPPING.md).
 *
 * The directory comes from the explicit constructor argument or the
 * AZUL_MAPPING_CACHE environment variable; an empty directory string
 * disables the cache (every call is a pass-through miss).
 */
#ifndef AZUL_MAPPING_MAPPING_CACHE_H_
#define AZUL_MAPPING_MAPPING_CACHE_H_

#include <cstdint>
#include <optional>
#include <string>

#include "mapping/azul_mapper.h"
#include "mapping/mapping.h"

namespace azul {

/**
 * Content hash identifying one mapping computation. Covers matrix
 * structure, mapper name, tile count, and result-affecting options;
 * excludes numeric values and host-perf knobs.
 */
std::uint64_t MappingCacheKey(const MappingProblem& prob,
                              const std::string& mapper_name,
                              std::int32_t num_tiles,
                              const AzulMapperOptions& opts);

/**
 * Content hash of a matrix's sparsity structure alone
 * (rows/cols/row_ptr/col_idx; numeric values excluded) — the
 * structure-drift detector of the warm-start pipeline
 * (docs/TIMESTEPPING.md): two matrices hash equal iff a mapping
 * computed for one is structurally valid for the other.
 */
std::uint64_t StructureHash(const CsrMatrix& m);

/** A directory of serialized mappings addressed by cache key. */
class MappingCache {
  public:
    /** Empty dir disables the cache. */
    explicit MappingCache(std::string dir) : dir_(std::move(dir)) {}

    /** AZUL_MAPPING_CACHE env var, or "" when unset. */
    static std::string DirFromEnv();

    bool enabled() const { return !dir_.empty(); }
    const std::string& dir() const { return dir_; }

    /** File path a key maps to (valid even when disabled). */
    std::string PathForKey(std::uint64_t key) const;

    /**
     * Loads and validates the cached mapping for `key`, or nullopt on
     * miss (absent file, unreadable/corrupt contents, or a mapping
     * that fails validation against the problem — a hash collision or
     * a torn file counts as a miss, never an error). Updates the
     * hit/miss counters.
     */
    std::optional<DataMapping> TryLoad(std::uint64_t key,
                                       const MappingProblem& prob,
                                       std::int32_t num_tiles);

    /**
     * Persists a mapping under `key`, creating the directory if
     * needed. Writes to a temporary sibling and renames, so readers
     * never observe a torn file. I/O failure logs and returns false —
     * a broken cache dir must not fail the solve.
     */
    bool Store(std::uint64_t key, const DataMapping& mapping);

    int hits() const { return hits_; }
    int misses() const { return misses_; }

  private:
    std::string dir_;
    int hits_ = 0;
    int misses_ = 0;
};

} // namespace azul

#endif // AZUL_MAPPING_MAPPING_CACHE_H_
