#include "mapping/hypergraph.h"

#include <algorithm>
#include <unordered_set>

namespace azul {

Hypergraph::Hypergraph(int num_constraints,
                       std::vector<Weight> vertex_weights,
                       std::vector<Weight> edge_weights,
                       std::vector<Index> pin_ptr, std::vector<Index> pins)
    : num_constraints_(num_constraints),
      vertex_weights_(std::move(vertex_weights)),
      edge_weights_(std::move(edge_weights)),
      pin_ptr_(std::move(pin_ptr)),
      pins_(std::move(pins))
{
    AZUL_CHECK(num_constraints_ >= 1);
    AZUL_CHECK(vertex_weights_.size() % num_constraints_ == 0);
    num_vertices_ = static_cast<Index>(vertex_weights_.size() /
                                       num_constraints_);
    AZUL_CHECK(pin_ptr_.size() == edge_weights_.size() + 1);
    AZUL_CHECK(pin_ptr_.front() == 0);
    AZUL_CHECK(pin_ptr_.back() == static_cast<Index>(pins_.size()));
    for (Index p : pins_) {
        AZUL_CHECK_MSG(p >= 0 && p < num_vertices_,
                       "pin " << p << " out of range");
    }
}

void
Hypergraph::BuildIncidence()
{
    inc_ptr_.assign(static_cast<std::size_t>(num_vertices_) + 1, 0);
    for (Index p : pins_) {
        ++inc_ptr_[static_cast<std::size_t>(p) + 1];
    }
    for (std::size_t v = 0; v + 1 < inc_ptr_.size(); ++v) {
        inc_ptr_[v + 1] += inc_ptr_[v];
    }
    inc_.resize(pins_.size());
    std::vector<Index> cursor(inc_ptr_.begin(), inc_ptr_.end() - 1);
    for (Index e = 0; e < NumEdges(); ++e) {
        for (Index k = EdgeBegin(e); k < EdgeEnd(e); ++k) {
            inc_[static_cast<std::size_t>(
                cursor[static_cast<std::size_t>(Pin(k))]++)] = e;
        }
    }
}

Weight
Hypergraph::TotalWeight(int c) const
{
    Weight total = 0;
    for (Index v = 0; v < num_vertices_; ++v) {
        total += VertexWeight(v, c);
    }
    return total;
}

Weight
Hypergraph::ConnectivityCut(const std::vector<std::int32_t>& part) const
{
    AZUL_CHECK(static_cast<Index>(part.size()) == num_vertices_);
    Weight cut = 0;
    std::unordered_set<std::int32_t> seen;
    for (Index e = 0; e < NumEdges(); ++e) {
        seen.clear();
        for (Index k = EdgeBegin(e); k < EdgeEnd(e); ++k) {
            seen.insert(part[static_cast<std::size_t>(Pin(k))]);
        }
        cut += EdgeWeight(e) *
               static_cast<Weight>(seen.size() - 1);
    }
    return cut;
}

} // namespace azul
