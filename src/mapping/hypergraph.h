/**
 * @file
 * Hypergraph representation for the data-mapping problem (Sec IV-B).
 *
 * Vertices are operand values (matrix nonzeros and vector slots);
 * hyperedges are communication sets (one per matrix row and one per
 * matrix column). Partitioning minimizes the connectivity metric
 * sum_e w_e * (lambda_e - 1), which equals the number of induced
 * messages: a set spanning lambda tiles needs lambda - 1 transfers.
 *
 * Vertices carry multi-dimensional weights: constraint 0 is the
 * memory footprint, and constraints 1..q are the temporal quantile
 * loads used for time balancing (Sec IV-C).
 */
#ifndef AZUL_MAPPING_HYPERGRAPH_H_
#define AZUL_MAPPING_HYPERGRAPH_H_

#include <cstdint>
#include <vector>

#include "util/common.h"

namespace azul {

/** Vertex/edge weight type for the partitioner. */
using Weight = std::int64_t;

/** Multi-constraint weighted hypergraph in CSR-of-pins form. */
class Hypergraph {
  public:
    Hypergraph() = default;

    /**
     * Constructs with explicit members.
     *
     * @param num_constraints weights per vertex (>= 1).
     * @param vertex_weights  flattened [vertex][constraint] array.
     * @param edge_weights    one weight per hyperedge.
     * @param pin_ptr         CSR offsets into pins, size E+1.
     * @param pins            concatenated pin (vertex) lists.
     */
    Hypergraph(int num_constraints, std::vector<Weight> vertex_weights,
               std::vector<Weight> edge_weights,
               std::vector<Index> pin_ptr, std::vector<Index> pins);

    Index NumVertices() const { return num_vertices_; }
    Index NumEdges() const
    {
        return static_cast<Index>(edge_weights_.size());
    }
    Index NumPins() const { return static_cast<Index>(pins_.size()); }
    int num_constraints() const { return num_constraints_; }

    Weight
    VertexWeight(Index v, int c) const
    {
        return vertex_weights_[static_cast<std::size_t>(v) *
                                   num_constraints_ +
                               static_cast<std::size_t>(c)];
    }

    Weight EdgeWeight(Index e) const
    {
        return edge_weights_[static_cast<std::size_t>(e)];
    }

    Index EdgeBegin(Index e) const { return pin_ptr_[e]; }
    Index EdgeEnd(Index e) const { return pin_ptr_[e + 1]; }
    Index EdgeSize(Index e) const { return pin_ptr_[e + 1] - pin_ptr_[e]; }
    Index Pin(Index k) const { return pins_[static_cast<std::size_t>(k)]; }

    /** Edges incident to vertex v (requires BuildIncidence()). */
    Index IncBegin(Index v) const { return inc_ptr_[v]; }
    Index IncEnd(Index v) const { return inc_ptr_[v + 1]; }
    Index IncEdge(Index k) const
    {
        return inc_[static_cast<std::size_t>(k)];
    }
    bool HasIncidence() const { return !inc_ptr_.empty(); }

    /** Builds the vertex→edge incidence structure. */
    void BuildIncidence();

    /** Sum of vertex weights for one constraint. */
    Weight TotalWeight(int c) const;

    /**
     * Connectivity cut of a partition assignment:
     * sum_e w_e * (lambda_e - 1), lambda_e = #parts edge e touches.
     */
    Weight ConnectivityCut(const std::vector<std::int32_t>& part) const;

    const std::vector<Weight>& vertex_weights() const
    {
        return vertex_weights_;
    }

  private:
    Index num_vertices_ = 0;
    int num_constraints_ = 1;
    std::vector<Weight> vertex_weights_;
    std::vector<Weight> edge_weights_;
    std::vector<Index> pin_ptr_{0};
    std::vector<Index> pins_;
    std::vector<Index> inc_ptr_;
    std::vector<Index> inc_;
};

} // namespace azul

#endif // AZUL_MAPPING_HYPERGRAPH_H_
