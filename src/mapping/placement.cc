#include "mapping/placement.h"

#include <algorithm>
#include <utility>

namespace azul {

namespace {

bool
IsPowerOfTwo(std::int32_t x)
{
    return x > 0 && (x & (x - 1)) == 0;
}

/** Interleaves the bits of x (even positions) and y (odd positions). */
std::int64_t
MortonEncode(std::int32_t x, std::int32_t y)
{
    std::int64_t out = 0;
    for (int b = 0; b < 16; ++b) {
        out |= static_cast<std::int64_t>((x >> b) & 1) << (2 * b);
        out |= static_cast<std::int64_t>((y >> b) & 1) << (2 * b + 1);
    }
    return out;
}

} // namespace

std::vector<std::int32_t>
PlaceParts(std::int32_t width, std::int32_t height,
           PlacementStrategy strategy)
{
    AZUL_CHECK(width > 0 && height > 0);
    const std::int32_t total = width * height;
    std::vector<std::int32_t> part_to_tile(
        static_cast<std::size_t>(total));
    if (strategy == PlacementStrategy::kZOrder && IsPowerOfTwo(width) &&
        IsPowerOfTwo(height)) {
        // Sort tiles by Morton code; part p takes the p-th tile in
        // that order, so contiguous part ranges form compact blocks.
        std::vector<std::pair<std::int64_t, std::int32_t>> order;
        order.reserve(static_cast<std::size_t>(total));
        for (std::int32_t y = 0; y < height; ++y) {
            for (std::int32_t x = 0; x < width; ++x) {
                order.emplace_back(MortonEncode(x, y), y * width + x);
            }
        }
        std::sort(order.begin(), order.end());
        for (std::int32_t p = 0; p < total; ++p) {
            part_to_tile[static_cast<std::size_t>(p)] =
                order[static_cast<std::size_t>(p)].second;
        }
        return part_to_tile;
    }
    for (std::int32_t p = 0; p < total; ++p) {
        part_to_tile[static_cast<std::size_t>(p)] = p;
    }
    return part_to_tile;
}

} // namespace azul
