#include "mapping/sparsep.h"

#include <algorithm>
#include <cmath>

namespace azul {

namespace {

/**
 * Splits columns [0, cols) into `parts` contiguous chunks with
 * approximately equal total weight. Returns per-column chunk ids.
 */
std::vector<std::int32_t>
EqualWeightChunks(const std::vector<Index>& weight, std::int32_t parts)
{
    const Index total = [&weight] {
        Index t = 0;
        for (Index w : weight) {
            t += w;
        }
        return t;
    }();
    std::vector<std::int32_t> chunk_of(weight.size(), 0);
    Index acc = 0;
    std::int32_t cur = 0;
    for (std::size_t i = 0; i < weight.size(); ++i) {
        // Advance the chunk when the running weight passes the ideal
        // boundary, keeping chunks contiguous.
        const Index boundary =
            (static_cast<Index>(cur) + 1) * total / parts;
        if (acc >= boundary && cur + 1 < parts) {
            ++cur;
        }
        chunk_of[i] = cur;
        acc += weight[i];
    }
    return chunk_of;
}

/** 2-D chunking of one matrix; returns per-nonzero tile ids. */
std::vector<TileId>
SparsePAssign(const CsrMatrix& m, std::int32_t grid,
              std::vector<std::int32_t>* col_chunk_out,
              std::vector<std::vector<std::int32_t>>* row_chunk_out)
{
    // 1. Column chunks of equal nonzero count.
    std::vector<Index> col_weight(static_cast<std::size_t>(m.cols()), 0);
    for (Index c : m.col_idx()) {
        ++col_weight[static_cast<std::size_t>(c)];
    }
    const std::vector<std::int32_t> col_chunk =
        EqualWeightChunks(col_weight, grid);

    // 2. Within each column chunk, row chunks of equal nonzero count.
    std::vector<std::vector<Index>> row_weight(
        static_cast<std::size_t>(grid),
        std::vector<Index>(static_cast<std::size_t>(m.rows()), 0));
    for (Index r = 0; r < m.rows(); ++r) {
        for (Index k = m.RowBegin(r); k < m.RowEnd(r); ++k) {
            const std::int32_t cc =
                col_chunk[static_cast<std::size_t>(m.col_idx()[k])];
            ++row_weight[static_cast<std::size_t>(cc)]
                        [static_cast<std::size_t>(r)];
        }
    }
    std::vector<std::vector<std::int32_t>> row_chunk;
    row_chunk.reserve(static_cast<std::size_t>(grid));
    for (std::int32_t cc = 0; cc < grid; ++cc) {
        row_chunk.push_back(EqualWeightChunks(
            row_weight[static_cast<std::size_t>(cc)], grid));
    }

    std::vector<TileId> out(static_cast<std::size_t>(m.nnz()));
    for (Index r = 0; r < m.rows(); ++r) {
        for (Index k = m.RowBegin(r); k < m.RowEnd(r); ++k) {
            const std::int32_t cc =
                col_chunk[static_cast<std::size_t>(m.col_idx()[k])];
            const std::int32_t rc =
                row_chunk[static_cast<std::size_t>(cc)]
                         [static_cast<std::size_t>(r)];
            out[static_cast<std::size_t>(k)] =
                static_cast<TileId>(cc * grid + rc);
        }
    }
    if (col_chunk_out != nullptr) {
        *col_chunk_out = col_chunk;
    }
    if (row_chunk_out != nullptr) {
        *row_chunk_out = std::move(row_chunk);
    }
    return out;
}

} // namespace

DataMapping
SparsePMapper::Map(const MappingProblem& prob, std::int32_t num_tiles)
{
    AZUL_CHECK(prob.a != nullptr);
    AZUL_CHECK(num_tiles > 0);
    const auto grid = static_cast<std::int32_t>(
        std::floor(std::sqrt(static_cast<double>(num_tiles))));
    AZUL_CHECK_MSG(grid >= 1, "SparseP needs at least one tile");

    DataMapping m;
    m.num_tiles = num_tiles;

    std::vector<std::int32_t> col_chunk;
    std::vector<std::vector<std::int32_t>> row_chunk;
    m.a_nnz_tile = SparsePAssign(*prob.a, grid, &col_chunk, &row_chunk);
    if (prob.l != nullptr) {
        m.l_nnz_tile = SparsePAssign(*prob.l, grid, nullptr, nullptr);
    }
    // Vector slot i lives on the diagonal chunk: (column chunk of i,
    // row chunk of i within that column chunk).
    m.vec_tile.resize(static_cast<std::size_t>(prob.n()));
    for (Index i = 0; i < prob.n(); ++i) {
        const std::int32_t cc = col_chunk[static_cast<std::size_t>(i)];
        const std::int32_t rc =
            row_chunk[static_cast<std::size_t>(cc)]
                     [static_cast<std::size_t>(i)];
        m.vec_tile[static_cast<std::size_t>(i)] =
            static_cast<TileId>(cc * grid + rc);
    }
    return m;
}

} // namespace azul
