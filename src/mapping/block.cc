#include "mapping/block.h"

namespace azul {

namespace {

/** Assigns index i of `count` items to one of `parts` equal blocks. */
std::vector<TileId>
BlockAssign(Index count, std::int32_t parts)
{
    std::vector<TileId> out(static_cast<std::size_t>(count));
    if (count == 0) {
        return out;
    }
    const Index chunk = (count + parts - 1) / parts;
    for (Index i = 0; i < count; ++i) {
        out[static_cast<std::size_t>(i)] =
            static_cast<TileId>(i / chunk);
    }
    return out;
}

} // namespace

DataMapping
BlockMapper::Map(const MappingProblem& prob, std::int32_t num_tiles)
{
    AZUL_CHECK(prob.a != nullptr);
    AZUL_CHECK(num_tiles > 0);
    DataMapping m;
    m.num_tiles = num_tiles;
    m.a_nnz_tile = BlockAssign(prob.a->nnz(), num_tiles);
    if (prob.l != nullptr) {
        m.l_nnz_tile = BlockAssign(prob.l->nnz(), num_tiles);
    }
    m.vec_tile = BlockAssign(prob.n(), num_tiles);
    return m;
}

} // namespace azul
