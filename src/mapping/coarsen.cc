#include "mapping/coarsen.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace azul {

CoarseningStep
CoarsenOnce(const Hypergraph& hg, Rng& rng, const CoarsenOptions& opts)
{
    AZUL_CHECK(hg.HasIncidence());
    const Index n = hg.NumVertices();

    // ---- Matching phase -------------------------------------------------
    // Visit vertices in random order; for each unmatched vertex,
    // accumulate a connectivity score to each neighbour via shared
    // edges (w_e / (|e| - 1)) and match with the best unmatched one.
    std::vector<Index> visit(static_cast<std::size_t>(n));
    std::iota(visit.begin(), visit.end(), Index{0});
    rng.Shuffle(visit);

    std::vector<Index> match(static_cast<std::size_t>(n), Index{-1});
    // Dense scratch arrays beat a hash map here: score[] holds the
    // accumulated connectivity, touched[] the neighbours to reset.
    std::vector<double> score(static_cast<std::size_t>(n), 0.0);
    std::vector<Index> touched;

    for (Index u : visit) {
        if (match[static_cast<std::size_t>(u)] != -1) {
            continue;
        }
        touched.clear();
        for (Index ik = hg.IncBegin(u); ik < hg.IncEnd(u); ++ik) {
            const Index e = hg.IncEdge(ik);
            const Index size = hg.EdgeSize(e);
            if (size < 2 || size > opts.big_edge_threshold) {
                continue;
            }
            const double s = static_cast<double>(hg.EdgeWeight(e)) /
                             static_cast<double>(size - 1);
            for (Index pk = hg.EdgeBegin(e); pk < hg.EdgeEnd(e); ++pk) {
                const Index v = hg.Pin(pk);
                if (v == u || match[static_cast<std::size_t>(v)] != -1) {
                    continue;
                }
                if (score[static_cast<std::size_t>(v)] == 0.0) {
                    touched.push_back(v);
                }
                score[static_cast<std::size_t>(v)] += s;
            }
        }
        Index best = -1;
        double best_score = 0.0;
        for (Index v : touched) {
            if (score[static_cast<std::size_t>(v)] > best_score) {
                best_score = score[static_cast<std::size_t>(v)];
                best = v;
            }
            score[static_cast<std::size_t>(v)] = 0.0;
        }
        if (best != -1) {
            match[static_cast<std::size_t>(u)] = best;
            match[static_cast<std::size_t>(best)] = u;
        }
    }

    // ---- Contraction ----------------------------------------------------
    CoarseningStep step;
    step.fine_to_coarse.assign(static_cast<std::size_t>(n), Index{-1});
    Index coarse_n = 0;
    for (Index v = 0; v < n; ++v) {
        if (step.fine_to_coarse[static_cast<std::size_t>(v)] != -1) {
            continue;
        }
        step.fine_to_coarse[static_cast<std::size_t>(v)] = coarse_n;
        const Index m = match[static_cast<std::size_t>(v)];
        if (m != -1 &&
            step.fine_to_coarse[static_cast<std::size_t>(m)] == -1) {
            step.fine_to_coarse[static_cast<std::size_t>(m)] = coarse_n;
        }
        ++coarse_n;
    }

    const int nc = hg.num_constraints();
    std::vector<Weight> cw(
        static_cast<std::size_t>(coarse_n) * static_cast<std::size_t>(nc),
        0);
    for (Index v = 0; v < n; ++v) {
        const Index cv = step.fine_to_coarse[static_cast<std::size_t>(v)];
        for (int c = 0; c < nc; ++c) {
            cw[static_cast<std::size_t>(cv) * nc +
               static_cast<std::size_t>(c)] += hg.VertexWeight(v, c);
        }
    }

    // Project edges, dedupe pins within each edge, drop single-pin
    // edges, and merge identical edges via hashing.
    std::vector<Index> pin_ptr{0};
    std::vector<Index> pins;
    std::vector<Weight> eweights;
    std::unordered_map<std::size_t, std::vector<Index>> bucket_of_hash;

    std::vector<Index> scratch;
    for (Index e = 0; e < hg.NumEdges(); ++e) {
        scratch.clear();
        for (Index k = hg.EdgeBegin(e); k < hg.EdgeEnd(e); ++k) {
            scratch.push_back(
                step.fine_to_coarse[static_cast<std::size_t>(hg.Pin(k))]);
        }
        std::sort(scratch.begin(), scratch.end());
        scratch.erase(std::unique(scratch.begin(), scratch.end()),
                      scratch.end());
        if (scratch.size() < 2) {
            continue;
        }
        // Hash the pin list to find identical existing edges.
        std::size_t h = scratch.size();
        for (Index p : scratch) {
            h = h * 1000003ULL + static_cast<std::size_t>(p);
        }
        bool merged = false;
        auto it = bucket_of_hash.find(h);
        if (it != bucket_of_hash.end()) {
            for (Index cand : it->second) {
                const Index begin = pin_ptr[cand];
                const Index end = pin_ptr[cand + 1];
                if (end - begin ==
                        static_cast<Index>(scratch.size()) &&
                    std::equal(scratch.begin(), scratch.end(),
                               pins.begin() + begin)) {
                    eweights[static_cast<std::size_t>(cand)] +=
                        hg.EdgeWeight(e);
                    merged = true;
                    break;
                }
            }
        }
        if (!merged) {
            const Index new_edge = static_cast<Index>(eweights.size());
            pins.insert(pins.end(), scratch.begin(), scratch.end());
            pin_ptr.push_back(static_cast<Index>(pins.size()));
            eweights.push_back(hg.EdgeWeight(e));
            bucket_of_hash[h].push_back(new_edge);
        }
    }

    step.coarse = Hypergraph(nc, std::move(cw), std::move(eweights),
                             std::move(pin_ptr), std::move(pins));
    step.coarse.BuildIncidence();
    return step;
}

} // namespace azul
