#include "mapping/mapper_factory.h"

#include "mapping/block.h"
#include "mapping/round_robin.h"
#include "mapping/sparsep.h"

namespace azul {

std::string
MapperKindName(MapperKind kind)
{
    switch (kind) {
      case MapperKind::kRoundRobin: return "round-robin";
      case MapperKind::kBlock: return "block";
      case MapperKind::kSparseP: return "sparsep";
      case MapperKind::kAzul: return "azul";
    }
    return "?";
}

std::unique_ptr<Mapper>
MakeMapper(MapperKind kind, const AzulMapperOptions& azul_opts)
{
    switch (kind) {
      case MapperKind::kRoundRobin:
        return std::make_unique<RoundRobinMapper>();
      case MapperKind::kBlock:
        return std::make_unique<BlockMapper>();
      case MapperKind::kSparseP:
        return std::make_unique<SparsePMapper>();
      case MapperKind::kAzul:
        return std::make_unique<AzulMapper>(azul_opts);
    }
    throw AzulError("unknown mapper kind");
}

} // namespace azul
