/**
 * @file
 * Multilevel k-way hypergraph partitioner via recursive bisection —
 * the from-scratch replacement for PaToH used by the Azul mapper.
 *
 * Pipeline per bisection (standard multilevel scheme):
 *   1. coarsen by heavy-connectivity matching until small;
 *   2. initial partition by greedy region growth (several seeds);
 *   3. uncoarsen, refining with multi-constraint FM at every level.
 * Recursive bisection then yields k parts with per-constraint balance.
 */
#ifndef AZUL_MAPPING_PARTITIONER_H_
#define AZUL_MAPPING_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "mapping/hypergraph.h"

namespace azul {

/** Partitioner quality/effort knobs (PaToH-preset analog). */
struct PartitionerOptions {
    double epsilon = 0.08;       //!< allowed per-constraint imbalance
    Index coarsen_to = 160;      //!< stop coarsening below this size
    double min_shrink = 0.95;    //!< stop if a level shrinks less
    int initial_tries = 4;       //!< greedy-growth restarts
    int fm_passes = 4;           //!< FM passes per level
    Index big_edge_threshold = 256;
    std::uint64_t seed = 0xA201;
};

/**
 * Partitions hg into k parts, minimizing connectivity cut subject to
 * multi-constraint balance. Returns the part id of every vertex.
 */
std::vector<std::int32_t> PartitionHypergraph(
    const Hypergraph& hg, std::int32_t k,
    const PartitionerOptions& opts = {});

} // namespace azul

#endif // AZUL_MAPPING_PARTITIONER_H_
