/**
 * @file
 * Multilevel k-way hypergraph partitioner via recursive bisection —
 * the from-scratch replacement for PaToH used by the Azul mapper.
 *
 * Pipeline per bisection (standard multilevel scheme):
 *   1. coarsen by heavy-connectivity matching until small;
 *   2. initial partition by greedy region growth (several seeds);
 *   3. uncoarsen, refining with multi-constraint FM at every level.
 * Recursive bisection then yields k parts with per-constraint balance.
 *
 * The recursion tree is parallelized over a ThreadPool task tree
 * (`threads` knob): after each bisection the two side sub-problems are
 * independent tasks; subproblems below `parallel_grain` vertices stay
 * inline on the submitting worker. Every recursion node draws from a
 * branch-local RNG stream seeded by MixSeed(seed, part_base, k), so
 * the partition is a pure function of (hypergraph, k, options) —
 * bit-identical at any thread count, and across repeated runs.
 */
#ifndef AZUL_MAPPING_PARTITIONER_H_
#define AZUL_MAPPING_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "mapping/hypergraph.h"
#include "util/scoped_timer.h"

namespace azul {

/** Partitioner quality/effort knobs (PaToH-preset analog). */
struct PartitionerOptions {
    double epsilon = 0.08;       //!< allowed per-constraint imbalance
    Index coarsen_to = 160;      //!< stop coarsening below this size
    double min_shrink = 0.95;    //!< stop if a level shrinks less
    int initial_tries = 4;       //!< greedy-growth restarts
    int fm_passes = 4;           //!< FM passes per level
    Index big_edge_threshold = 256;
    std::uint64_t seed = 0xA202;
    /**
     * Host worker threads for the recursive-bisection task tree;
     * <= 1 runs serial. Output is bit-identical at any thread count
     * (branch-local seeding), so this is purely a host-perf knob.
     */
    int threads = 1;
    /** Minimum sub-hypergraph vertices before a recursion branch (or
     *  the coarsest-level initial tries) is submitted to the pool;
     *  smaller subproblems run inline on the current worker. */
    Index parallel_grain = 2048;
};

/**
 * Wall-clock phase breakdown of one PartitionHypergraph call, summed
 * over all recursion nodes. Accumulators are thread-safe; with
 * threads > 1 phases overlap across workers, so the sum can exceed
 * the elapsed wall time (it measures work, not the critical path).
 */
struct PartitionPhaseStats {
    AtomicSeconds coarsen; //!< matching + contraction chain
    AtomicSeconds initial; //!< greedy growth + FM at coarsest level
    AtomicSeconds refine;  //!< uncoarsening FM passes
    AtomicSeconds extract; //!< side sub-hypergraph construction
    /** Time inside FmRefineBisection itself (gain-bucket refinement).
     *  A sub-measure of `initial` + `refine`, so it is NOT added to
     *  total() — it isolates the FM kernel from projection/constraint
     *  bookkeeping around it. */
    AtomicSeconds fm_refine;

    double
    total() const
    {
        return coarsen.seconds() + initial.seconds() +
               refine.seconds() + extract.seconds();
    }
};

/**
 * Partitions hg into k parts, minimizing connectivity cut subject to
 * multi-constraint balance. Returns the part id of every vertex.
 * Optional `phases` receives the phase timing breakdown.
 */
std::vector<std::int32_t> PartitionHypergraph(
    const Hypergraph& hg, std::int32_t k,
    const PartitionerOptions& opts = {},
    PartitionPhaseStats* phases = nullptr);

} // namespace azul

#endif // AZUL_MAPPING_PARTITIONER_H_
