#include "mapping/quantiles.h"

#include <algorithm>

namespace azul {

std::vector<int>
QuantileBuckets(const std::vector<Index>& depths, int q)
{
    AZUL_CHECK(q >= 1);
    std::vector<int> bucket(depths.size(), 0);
    if (depths.empty() || q == 1) {
        return bucket;
    }
    // Histogram depths, then walk the histogram accumulating counts
    // and advancing the bucket at each 1/q population boundary. All
    // items of one depth share a bucket.
    Index max_depth = 0;
    for (Index d : depths) {
        AZUL_CHECK(d >= 0);
        max_depth = std::max(max_depth, d);
    }
    std::vector<Index> hist(static_cast<std::size_t>(max_depth) + 1, 0);
    for (Index d : depths) {
        ++hist[static_cast<std::size_t>(d)];
    }
    std::vector<int> bucket_of_depth(hist.size(), 0);
    const auto total = static_cast<double>(depths.size());
    Index seen = 0;
    for (std::size_t d = 0; d < hist.size(); ++d) {
        // Bucket by the midpoint of this depth's population range so
        // a single dominant depth doesn't push everything into the
        // last bucket.
        const double mid =
            static_cast<double>(seen) +
            static_cast<double>(hist[d]) / 2.0;
        int b = static_cast<int>(mid / total * static_cast<double>(q));
        b = std::clamp(b, 0, q - 1);
        bucket_of_depth[d] = b;
        seen += hist[d];
    }
    for (std::size_t i = 0; i < depths.size(); ++i) {
        bucket[i] =
            bucket_of_depth[static_cast<std::size_t>(depths[i])];
    }
    return bucket;
}

} // namespace azul
