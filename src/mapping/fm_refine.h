/**
 * @file
 * Fiduccia-Mattheyses refinement for 2-way partitions, with
 * multi-constraint balance (the mechanism behind the paper's
 * time-balanced quantile constraints, Sec IV-C).
 */
#ifndef AZUL_MAPPING_FM_REFINE_H_
#define AZUL_MAPPING_FM_REFINE_H_

#include <cstdint>
#include <vector>

#include "mapping/hypergraph.h"
#include "util/scoped_timer.h"

namespace azul {

/** Per-constraint capacity limits of the two sides of a bisection. */
struct BisectionConstraints {
    /** max_part[side][constraint] upper bounds. */
    std::vector<Weight> max_part0;
    std::vector<Weight> max_part1;
};

/** FM knobs. */
struct FmOptions {
    int max_passes = 4;
    /** Optional wall-time accumulator: every FmRefineBisection call
     *  adds its own duration (PartitionPhaseStats::fm_refine). */
    AtomicSeconds* fm_seconds = nullptr;
};

/**
 * Refines a 2-way partition in place. Returns the total cut
 * improvement (>= 0). A move is admissible if it does not increase
 * the partition's constraint violation, so an infeasible input is
 * driven toward feasibility.
 */
Weight FmRefineBisection(const Hypergraph& hg,
                         std::vector<std::int32_t>& part,
                         const BisectionConstraints& constraints,
                         const FmOptions& opts = {});

/** Cut weight of a bisection (edges spanning both sides). */
Weight BisectionCut(const Hypergraph& hg,
                    const std::vector<std::int32_t>& part);

} // namespace azul

#endif // AZUL_MAPPING_FM_REFINE_H_
