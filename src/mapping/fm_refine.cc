/**
 * @file
 * Gain-bucket Fiduccia-Mattheyses refinement. The selection structure
 * is the classic dense bucket array (one doubly-linked list of free
 * vertices per gain value, plus a max-gain cursor), and gains are
 * maintained incrementally with the standard F-M delta rules instead
 * of recomputing every neighbor's gain from scratch after each move —
 * the former lazy-heap implementation spent almost all of its time in
 * those O(degree^2) recomputes (docs/PERFORMANCE.md, "FM refinement").
 *
 * Determinism: bucket insertion is LIFO and selection always takes the
 * head of the highest non-empty bucket, so the move order is a pure
 * function of the hypergraph and the input partition — bit-identical
 * across runs and thread counts (the partitioner's branch-local
 * seeding does the rest). Tie-breaking differs from the old heap, so
 * switching implementations was a one-time sanctioned change of
 * partition outputs (golden traces regenerated; see TESTING.md).
 */
#include "mapping/fm_refine.h"

#include <algorithm>

#include "util/logging.h"

namespace azul {

Weight
BisectionCut(const Hypergraph& hg, const std::vector<std::int32_t>& part)
{
    Weight cut = 0;
    for (Index e = 0; e < hg.NumEdges(); ++e) {
        bool has0 = false;
        bool has1 = false;
        for (Index k = hg.EdgeBegin(e); k < hg.EdgeEnd(e); ++k) {
            (part[static_cast<std::size_t>(hg.Pin(k))] == 0 ? has0
                                                            : has1) = true;
            if (has0 && has1) {
                cut += hg.EdgeWeight(e);
                break;
            }
        }
    }
    return cut;
}

namespace {

/** Dense-gain cap: gains beyond this magnitude share the boundary
 *  buckets (still selected from the top; only the relative order of
 *  such extreme vertices coarsens). Bounds the bucket array at ~16 MB
 *  even for hypergraphs with huge accumulated edge weights. */
constexpr Weight kMaxDenseGain = Weight{1} << 20;

/**
 * The FM selection structure: buckets_[gain + cap] heads an intrusive
 * doubly-linked list of the free vertices currently at that gain.
 * Insertion is LIFO; PopMax takes the head of the highest non-empty
 * bucket, walking the max cursor down lazily (it only ever rises on
 * insert, so a pass's total downward walk is bounded by the number of
 * inserts). All operations are O(1) apart from that amortized walk.
 */
class GainBuckets {
  public:
    GainBuckets(Index num_vertices, Weight cap)
        : cap_(cap),
          head_(static_cast<std::size_t>(2 * cap + 1), kNone),
          prev_(static_cast<std::size_t>(num_vertices), kNone),
          next_(static_cast<std::size_t>(num_vertices), kNone),
          bucket_(static_cast<std::size_t>(num_vertices), kNone)
    {
    }

    void
    Insert(Index v, Weight gain)
    {
        const std::int64_t b = BucketOf(gain);
        const std::int64_t old_head =
            head_[static_cast<std::size_t>(b)];
        prev_[static_cast<std::size_t>(v)] = kNone;
        next_[static_cast<std::size_t>(v)] = old_head;
        if (old_head != kNone) {
            prev_[static_cast<std::size_t>(old_head)] = v;
        }
        head_[static_cast<std::size_t>(b)] = v;
        bucket_[static_cast<std::size_t>(v)] = b;
        max_bucket_ = std::max(max_bucket_, b);
    }

    void
    Remove(Index v)
    {
        const std::int64_t b = bucket_[static_cast<std::size_t>(v)];
        const std::int64_t p = prev_[static_cast<std::size_t>(v)];
        const std::int64_t n = next_[static_cast<std::size_t>(v)];
        if (p != kNone) {
            next_[static_cast<std::size_t>(p)] = n;
        } else {
            head_[static_cast<std::size_t>(b)] = n;
        }
        if (n != kNone) {
            prev_[static_cast<std::size_t>(n)] = p;
        }
        bucket_[static_cast<std::size_t>(v)] = kNone;
    }

    /** Moves v to the bucket of its new gain (v must be inserted). */
    void
    Update(Index v, Weight gain)
    {
        Remove(v);
        Insert(v, gain);
    }

    /** Pops the head of the highest non-empty bucket into `out`;
     *  false when every vertex is locked or moved. */
    bool
    PopMax(Index& out)
    {
        while (max_bucket_ >= 0 &&
               head_[static_cast<std::size_t>(max_bucket_)] == kNone) {
            --max_bucket_;
        }
        if (max_bucket_ < 0) {
            return false;
        }
        out = static_cast<Index>(
            head_[static_cast<std::size_t>(max_bucket_)]);
        Remove(out);
        return true;
    }

  private:
    static constexpr std::int64_t kNone = -1;

    std::int64_t
    BucketOf(Weight gain) const
    {
        return std::clamp<Weight>(gain, -cap_, cap_) + cap_;
    }

    Weight cap_;
    std::vector<std::int64_t> head_;
    std::vector<std::int64_t> prev_;
    std::vector<std::int64_t> next_;
    std::vector<std::int64_t> bucket_; //!< kNone when not inserted
    std::int64_t max_bucket_ = -1;
};

/** Mutable state of one FM run. */
class FmState {
  public:
    FmState(const Hypergraph& hg, std::vector<std::int32_t>& part,
            const BisectionConstraints& cons)
        : hg_(hg), part_(part), cons_(cons),
          nc_(hg.num_constraints()),
          pin_count0_(static_cast<std::size_t>(hg.NumEdges()), 0),
          gain_(static_cast<std::size_t>(hg.NumVertices()), 0),
          locked_(static_cast<std::size_t>(hg.NumVertices()), 0),
          side_weight_(2 * static_cast<std::size_t>(nc_), 0)
    {
        for (Index e = 0; e < hg_.NumEdges(); ++e) {
            Index c0 = 0;
            for (Index k = hg_.EdgeBegin(e); k < hg_.EdgeEnd(e); ++k) {
                if (part_[static_cast<std::size_t>(hg_.Pin(k))] == 0) {
                    ++c0;
                }
            }
            pin_count0_[static_cast<std::size_t>(e)] = c0;
        }
        for (Index v = 0; v < hg_.NumVertices(); ++v) {
            const int side = part_[static_cast<std::size_t>(v)];
            for (int c = 0; c < nc_; ++c) {
                side_weight_[static_cast<std::size_t>(side * nc_ + c)] +=
                    hg_.VertexWeight(v, c);
            }
        }
    }

    Weight
    ComputeGain(Index v) const
    {
        const int side = part_[static_cast<std::size_t>(v)];
        Weight g = 0;
        for (Index ik = hg_.IncBegin(v); ik < hg_.IncEnd(v); ++ik) {
            const Index e = hg_.IncEdge(ik);
            const Index size = hg_.EdgeSize(e);
            const Index c0 = pin_count0_[static_cast<std::size_t>(e)];
            const Index on_my_side = side == 0 ? c0 : size - c0;
            if (on_my_side == 1) {
                g += hg_.EdgeWeight(e); // edge becomes internal
            } else if (on_my_side == size) {
                g -= hg_.EdgeWeight(e); // edge becomes cut
            }
        }
        return g;
    }

    /** Largest possible |gain| of any vertex: its incident weight sum
     *  (the dense bucket span, clamped to kMaxDenseGain). */
    Weight
    GainBound() const
    {
        Weight bound = 1;
        for (Index v = 0; v < hg_.NumVertices(); ++v) {
            Weight s = 0;
            for (Index ik = hg_.IncBegin(v); ik < hg_.IncEnd(v);
                 ++ik) {
                s += hg_.EdgeWeight(hg_.IncEdge(ik));
            }
            bound = std::max(bound, s);
        }
        return std::min(bound, kMaxDenseGain);
    }

    /** Sum over sides/constraints of weight above the allowed max. */
    Weight
    Violation() const
    {
        Weight total = 0;
        for (int c = 0; c < nc_; ++c) {
            total += std::max<Weight>(
                0, side_weight_[static_cast<std::size_t>(c)] -
                       cons_.max_part0[static_cast<std::size_t>(c)]);
            total += std::max<Weight>(
                0, side_weight_[static_cast<std::size_t>(nc_ + c)] -
                       cons_.max_part1[static_cast<std::size_t>(c)]);
        }
        return total;
    }

    /** Violation if v moved to the other side. */
    Weight
    ViolationAfterMove(Index v) const
    {
        const int from = part_[static_cast<std::size_t>(v)];
        Weight total = 0;
        for (int c = 0; c < nc_; ++c) {
            const Weight w = hg_.VertexWeight(v, c);
            const Weight delta0 = from == 0 ? -w : w;
            const Weight w0 =
                side_weight_[static_cast<std::size_t>(c)] + delta0;
            const Weight w1 =
                side_weight_[static_cast<std::size_t>(nc_ + c)] - delta0;
            total += std::max<Weight>(
                0, w0 - cons_.max_part0[static_cast<std::size_t>(c)]);
            total += std::max<Weight>(
                0, w1 - cons_.max_part1[static_cast<std::size_t>(c)]);
        }
        return total;
    }

    /** Applies the move of v to the other side (no gain maintenance;
     *  used for rollback, where the buckets are already drained). */
    void
    Move(Index v)
    {
        const int from = part_[static_cast<std::size_t>(v)];
        const int to = 1 - from;
        part_[static_cast<std::size_t>(v)] = to;
        for (int c = 0; c < nc_; ++c) {
            const Weight w = hg_.VertexWeight(v, c);
            side_weight_[static_cast<std::size_t>(from * nc_ + c)] -= w;
            side_weight_[static_cast<std::size_t>(to * nc_ + c)] += w;
        }
        for (Index ik = hg_.IncBegin(v); ik < hg_.IncEnd(v); ++ik) {
            const Index e = hg_.IncEdge(ik);
            pin_count0_[static_cast<std::size_t>(e)] +=
                to == 0 ? 1 : -1;
        }
    }

    /**
     * Moves v (already locked and removed from the buckets) and
     * applies the F-M delta-gain rules to the free pins of its edges.
     * For each edge, with T the destination side: if no pin was on T,
     * every free pin gains +w (the edge is about to become cut); if
     * exactly one was, that pin loses the +w it had for making the
     * edge internal. Symmetrically after the flip for the source
     * side. These deltas reproduce ComputeGain exactly — the old
     * implementation's post-move recompute of every neighbor is what
     * this replaces.
     */
    void
    MoveWithGainUpdates(Index v, GainBuckets& buckets)
    {
        const int from = part_[static_cast<std::size_t>(v)];
        const int to = 1 - from;
        for (Index ik = hg_.IncBegin(v); ik < hg_.IncEnd(v); ++ik) {
            const Index e = hg_.IncEdge(ik);
            const Weight w = hg_.EdgeWeight(e);
            const Index size = hg_.EdgeSize(e);
            const Index c0 = pin_count0_[static_cast<std::size_t>(e)];
            const Index from_count = from == 0 ? c0 : size - c0;
            const Index to_count = size - from_count;

            if (to_count == 0) {
                for (Index pk = hg_.EdgeBegin(e); pk < hg_.EdgeEnd(e);
                     ++pk) {
                    const Index u = hg_.Pin(pk);
                    if (u != v) {
                        AddGain(u, w, buckets);
                    }
                }
            } else if (to_count == 1) {
                for (Index pk = hg_.EdgeBegin(e); pk < hg_.EdgeEnd(e);
                     ++pk) {
                    const Index u = hg_.Pin(pk);
                    if (part_[static_cast<std::size_t>(u)] == to) {
                        AddGain(u, -w, buckets);
                        break;
                    }
                }
            }

            pin_count0_[static_cast<std::size_t>(e)] +=
                to == 0 ? 1 : -1;

            const Index rem = from_count - 1; // pins left on `from`
            if (rem == 0) {
                for (Index pk = hg_.EdgeBegin(e); pk < hg_.EdgeEnd(e);
                     ++pk) {
                    const Index u = hg_.Pin(pk);
                    if (u != v) {
                        AddGain(u, -w, buckets);
                    }
                }
            } else if (rem == 1) {
                for (Index pk = hg_.EdgeBegin(e); pk < hg_.EdgeEnd(e);
                     ++pk) {
                    const Index u = hg_.Pin(pk);
                    if (u != v &&
                        part_[static_cast<std::size_t>(u)] == from) {
                        AddGain(u, w, buckets);
                        break;
                    }
                }
            }
        }
        part_[static_cast<std::size_t>(v)] = to;
        for (int c = 0; c < nc_; ++c) {
            const Weight w = hg_.VertexWeight(v, c);
            side_weight_[static_cast<std::size_t>(from * nc_ + c)] -= w;
            side_weight_[static_cast<std::size_t>(to * nc_ + c)] += w;
        }
    }

    const Hypergraph& hg_;
    std::vector<std::int32_t>& part_;
    const BisectionConstraints& cons_;
    int nc_;
    std::vector<Index> pin_count0_;
    std::vector<Weight> gain_;
    std::vector<char> locked_;
    std::vector<Weight> side_weight_;

  private:
    void
    AddGain(Index u, Weight delta, GainBuckets& buckets)
    {
        if (locked_[static_cast<std::size_t>(u)]) {
            return; // locked and moved vertices take no more updates
        }
        gain_[static_cast<std::size_t>(u)] += delta;
        buckets.Update(u, gain_[static_cast<std::size_t>(u)]);
    }
};

} // namespace

Weight
FmRefineBisection(const Hypergraph& hg, std::vector<std::int32_t>& part,
                  const BisectionConstraints& constraints,
                  const FmOptions& opts)
{
    AZUL_CHECK(hg.HasIncidence());
    AZUL_CHECK(static_cast<Index>(part.size()) == hg.NumVertices());
    AZUL_CHECK(static_cast<int>(constraints.max_part0.size()) ==
               hg.num_constraints());
    AZUL_CHECK(static_cast<int>(constraints.max_part1.size()) ==
               hg.num_constraints());
    ScopedTimer fm_timer(opts.fm_seconds);

    FmState st(hg, part, constraints);
    GainBuckets buckets(hg.NumVertices(), st.GainBound());
    Weight total_improvement = 0;

    std::vector<Index> move_sequence;
    for (int pass = 0; pass < opts.max_passes; ++pass) {
        std::fill(st.locked_.begin(), st.locked_.end(), 0);
        // A pass always drains the buckets (every vertex is popped
        // exactly once: moved or admissibility-locked), so they are
        // empty here and refilling them is all the reset needed.
        for (Index v = 0; v < hg.NumVertices(); ++v) {
            st.gain_[static_cast<std::size_t>(v)] = st.ComputeGain(v);
            buckets.Insert(v, st.gain_[static_cast<std::size_t>(v)]);
        }

        move_sequence.clear();
        Weight cum_gain = 0;
        Weight best_cum_gain = 0;
        // Best prefix ranks feasibility first, then cut gain, so a
        // pass on an infeasible partition keeps the moves that repair
        // balance even when they cost cut (uncommon, but required
        // right after greedy initial growth).
        Weight best_violation = st.Violation();
        const Weight start_violation = best_violation;
        std::size_t best_prefix = 0;

        Index v = -1;
        while (buckets.PopMax(v)) {
            // Admissibility: moving v must not worsen the violation.
            // Locked for the rest of the pass (it stays out of the
            // buckets) to guarantee progress, exactly as before.
            if (st.ViolationAfterMove(v) > st.Violation()) {
                st.locked_[static_cast<std::size_t>(v)] = 1;
                continue;
            }
            st.locked_[static_cast<std::size_t>(v)] = 1;
            const Weight gain = st.gain_[static_cast<std::size_t>(v)];
            st.MoveWithGainUpdates(v, buckets);
            cum_gain += gain;
            move_sequence.push_back(v);
            const Weight violation = st.Violation();
            if (violation < best_violation ||
                (violation == best_violation &&
                 cum_gain > best_cum_gain)) {
                best_violation = violation;
                best_cum_gain = cum_gain;
                best_prefix = move_sequence.size();
            }
        }

        // Roll back the moves beyond the best prefix.
        for (std::size_t i = move_sequence.size(); i > best_prefix; --i) {
            st.Move(move_sequence[i - 1]);
        }
        total_improvement += best_cum_gain;
        if (best_cum_gain <= 0 && best_violation >= start_violation) {
            break;
        }
    }
    return total_improvement;
}

} // namespace azul
