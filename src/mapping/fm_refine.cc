#include "mapping/fm_refine.h"

#include <algorithm>
#include <queue>

namespace azul {

Weight
BisectionCut(const Hypergraph& hg, const std::vector<std::int32_t>& part)
{
    Weight cut = 0;
    for (Index e = 0; e < hg.NumEdges(); ++e) {
        bool has0 = false;
        bool has1 = false;
        for (Index k = hg.EdgeBegin(e); k < hg.EdgeEnd(e); ++k) {
            (part[static_cast<std::size_t>(hg.Pin(k))] == 0 ? has0
                                                            : has1) = true;
            if (has0 && has1) {
                cut += hg.EdgeWeight(e);
                break;
            }
        }
    }
    return cut;
}

namespace {

/** Mutable state of one FM run. */
class FmState {
  public:
    FmState(const Hypergraph& hg, std::vector<std::int32_t>& part,
            const BisectionConstraints& cons)
        : hg_(hg), part_(part), cons_(cons),
          nc_(hg.num_constraints()),
          pin_count0_(static_cast<std::size_t>(hg.NumEdges()), 0),
          gain_(static_cast<std::size_t>(hg.NumVertices()), 0),
          locked_(static_cast<std::size_t>(hg.NumVertices()), 0),
          stamp_(static_cast<std::size_t>(hg.NumVertices()), 0),
          side_weight_(2 * static_cast<std::size_t>(nc_), 0)
    {
        for (Index e = 0; e < hg_.NumEdges(); ++e) {
            Index c0 = 0;
            for (Index k = hg_.EdgeBegin(e); k < hg_.EdgeEnd(e); ++k) {
                if (part_[static_cast<std::size_t>(hg_.Pin(k))] == 0) {
                    ++c0;
                }
            }
            pin_count0_[static_cast<std::size_t>(e)] = c0;
        }
        for (Index v = 0; v < hg_.NumVertices(); ++v) {
            const int side = part_[static_cast<std::size_t>(v)];
            for (int c = 0; c < nc_; ++c) {
                side_weight_[static_cast<std::size_t>(side * nc_ + c)] +=
                    hg_.VertexWeight(v, c);
            }
        }
    }

    Weight
    ComputeGain(Index v) const
    {
        const int side = part_[static_cast<std::size_t>(v)];
        Weight g = 0;
        for (Index ik = hg_.IncBegin(v); ik < hg_.IncEnd(v); ++ik) {
            const Index e = hg_.IncEdge(ik);
            const Index size = hg_.EdgeSize(e);
            const Index c0 = pin_count0_[static_cast<std::size_t>(e)];
            const Index on_my_side = side == 0 ? c0 : size - c0;
            if (on_my_side == 1) {
                g += hg_.EdgeWeight(e); // edge becomes internal
            } else if (on_my_side == size) {
                g -= hg_.EdgeWeight(e); // edge becomes cut
            }
        }
        return g;
    }

    /** Sum over sides/constraints of weight above the allowed max. */
    Weight
    Violation() const
    {
        Weight total = 0;
        for (int c = 0; c < nc_; ++c) {
            total += std::max<Weight>(
                0, side_weight_[static_cast<std::size_t>(c)] -
                       cons_.max_part0[static_cast<std::size_t>(c)]);
            total += std::max<Weight>(
                0, side_weight_[static_cast<std::size_t>(nc_ + c)] -
                       cons_.max_part1[static_cast<std::size_t>(c)]);
        }
        return total;
    }

    /** Violation if v moved to the other side. */
    Weight
    ViolationAfterMove(Index v) const
    {
        const int from = part_[static_cast<std::size_t>(v)];
        Weight total = 0;
        for (int c = 0; c < nc_; ++c) {
            const Weight w = hg_.VertexWeight(v, c);
            const Weight delta0 = from == 0 ? -w : w;
            const Weight w0 =
                side_weight_[static_cast<std::size_t>(c)] + delta0;
            const Weight w1 =
                side_weight_[static_cast<std::size_t>(nc_ + c)] - delta0;
            total += std::max<Weight>(
                0, w0 - cons_.max_part0[static_cast<std::size_t>(c)]);
            total += std::max<Weight>(
                0, w1 - cons_.max_part1[static_cast<std::size_t>(c)]);
        }
        return total;
    }

    /** Applies the move of v to the other side, updating all state. */
    void
    Move(Index v)
    {
        const int from = part_[static_cast<std::size_t>(v)];
        const int to = 1 - from;
        part_[static_cast<std::size_t>(v)] = to;
        for (int c = 0; c < nc_; ++c) {
            const Weight w = hg_.VertexWeight(v, c);
            side_weight_[static_cast<std::size_t>(from * nc_ + c)] -= w;
            side_weight_[static_cast<std::size_t>(to * nc_ + c)] += w;
        }
        for (Index ik = hg_.IncBegin(v); ik < hg_.IncEnd(v); ++ik) {
            const Index e = hg_.IncEdge(ik);
            pin_count0_[static_cast<std::size_t>(e)] +=
                to == 0 ? 1 : -1;
        }
    }

    const Hypergraph& hg_;
    std::vector<std::int32_t>& part_;
    const BisectionConstraints& cons_;
    int nc_;
    std::vector<Index> pin_count0_;
    std::vector<Weight> gain_;
    std::vector<char> locked_;
    std::vector<std::uint32_t> stamp_;
    std::vector<Weight> side_weight_;
};

} // namespace

Weight
FmRefineBisection(const Hypergraph& hg, std::vector<std::int32_t>& part,
                  const BisectionConstraints& constraints,
                  const FmOptions& opts)
{
    AZUL_CHECK(hg.HasIncidence());
    AZUL_CHECK(static_cast<Index>(part.size()) == hg.NumVertices());
    AZUL_CHECK(static_cast<int>(constraints.max_part0.size()) ==
               hg.num_constraints());
    AZUL_CHECK(static_cast<int>(constraints.max_part1.size()) ==
               hg.num_constraints());

    FmState st(hg, part, constraints);
    Weight total_improvement = 0;

    struct HeapEntry {
        Weight gain;
        Index vertex;
        std::uint32_t stamp;
        bool
        operator<(const HeapEntry& o) const
        {
            return gain < o.gain; // max-heap on gain
        }
    };

    for (int pass = 0; pass < opts.max_passes; ++pass) {
        std::fill(st.locked_.begin(), st.locked_.end(), 0);
        std::priority_queue<HeapEntry> heap;
        for (Index v = 0; v < hg.NumVertices(); ++v) {
            st.gain_[static_cast<std::size_t>(v)] = st.ComputeGain(v);
            ++st.stamp_[static_cast<std::size_t>(v)];
            heap.push({st.gain_[static_cast<std::size_t>(v)], v,
                       st.stamp_[static_cast<std::size_t>(v)]});
        }

        std::vector<Index> move_sequence;
        Weight cum_gain = 0;
        Weight best_cum_gain = 0;
        // Best prefix ranks feasibility first, then cut gain, so a
        // pass on an infeasible partition keeps the moves that repair
        // balance even when they cost cut (uncommon, but required
        // right after greedy initial growth).
        Weight best_violation = st.Violation();
        const Weight start_violation = best_violation;
        std::size_t best_prefix = 0;

        while (!heap.empty()) {
            const HeapEntry top = heap.top();
            heap.pop();
            const Index v = top.vertex;
            if (top.stamp != st.stamp_[static_cast<std::size_t>(v)] ||
                st.locked_[static_cast<std::size_t>(v)]) {
                continue; // stale entry
            }
            // Admissibility: moving v must not worsen the violation.
            if (st.ViolationAfterMove(v) > st.Violation()) {
                // Re-examine later only if other moves change the
                // weights; lock for this pass to guarantee progress.
                st.locked_[static_cast<std::size_t>(v)] = 1;
                continue;
            }
            st.Move(v);
            st.locked_[static_cast<std::size_t>(v)] = 1;
            cum_gain += top.gain;
            move_sequence.push_back(v);
            const Weight violation = st.Violation();
            if (violation < best_violation ||
                (violation == best_violation &&
                 cum_gain > best_cum_gain)) {
                best_violation = violation;
                best_cum_gain = cum_gain;
                best_prefix = move_sequence.size();
            }
            // Refresh gains of unlocked pins of v's edges.
            for (Index ik = hg.IncBegin(v); ik < hg.IncEnd(v); ++ik) {
                const Index e = hg.IncEdge(ik);
                for (Index pk = hg.EdgeBegin(e); pk < hg.EdgeEnd(e);
                     ++pk) {
                    const Index u = hg.Pin(pk);
                    if (st.locked_[static_cast<std::size_t>(u)]) {
                        continue;
                    }
                    const Weight g = st.ComputeGain(u);
                    if (g != st.gain_[static_cast<std::size_t>(u)]) {
                        st.gain_[static_cast<std::size_t>(u)] = g;
                        ++st.stamp_[static_cast<std::size_t>(u)];
                        heap.push(
                            {g, u,
                             st.stamp_[static_cast<std::size_t>(u)]});
                    }
                }
            }
        }

        // Roll back the moves beyond the best prefix.
        for (std::size_t i = move_sequence.size(); i > best_prefix; --i) {
            st.Move(move_sequence[i - 1]);
        }
        total_improvement += best_cum_gain;
        if (best_cum_gain <= 0 && best_violation >= start_violation) {
            break;
        }
    }
    return total_improvement;
}

} // namespace azul
