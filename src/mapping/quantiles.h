/**
 * @file
 * Temporal quantile bucketing for time-balanced partitioning
 * (Sec IV-C, Fig 17). Each operation's depth in the dataflow graph's
 * topological order is bucketed into q equal-population quantiles;
 * balancing every quantile across tiles prevents a few tiles from
 * hoarding all the late (or early) work.
 */
#ifndef AZUL_MAPPING_QUANTILES_H_
#define AZUL_MAPPING_QUANTILES_H_

#include <vector>

#include "util/common.h"

namespace azul {

/**
 * Buckets depth values into q quantiles of (approximately) equal
 * population. Returns a bucket id in [0, q) for each input. Equal
 * depths always land in the same bucket.
 */
std::vector<int> QuantileBuckets(const std::vector<Index>& depths, int q);

} // namespace azul

#endif // AZUL_MAPPING_QUANTILES_H_
