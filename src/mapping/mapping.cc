#include "mapping/mapping.h"

#include <algorithm>
#include <unordered_set>

namespace azul {

void
DataMapping::Validate(const MappingProblem& prob) const
{
    AZUL_CHECK(prob.a != nullptr);
    AZUL_CHECK(num_tiles > 0);
    AZUL_CHECK_MSG(static_cast<Index>(a_nnz_tile.size()) == prob.a->nnz(),
                   "A nnz mapping size mismatch");
    if (prob.l != nullptr) {
        AZUL_CHECK_MSG(
            static_cast<Index>(l_nnz_tile.size()) == prob.l->nnz(),
            "L nnz mapping size mismatch");
    } else {
        AZUL_CHECK(l_nnz_tile.empty());
    }
    AZUL_CHECK_MSG(static_cast<Index>(vec_tile.size()) == prob.n(),
                   "vector mapping size mismatch");
    const auto in_range = [this](TileId t) {
        return t >= 0 && t < num_tiles;
    };
    for (TileId t : a_nnz_tile) {
        AZUL_CHECK_MSG(in_range(t), "A tile id " << t << " out of range");
    }
    for (TileId t : l_nnz_tile) {
        AZUL_CHECK_MSG(in_range(t), "L tile id " << t << " out of range");
    }
    for (TileId t : vec_tile) {
        AZUL_CHECK_MSG(in_range(t),
                       "vector tile id " << t << " out of range");
    }
}

std::vector<Index>
DataMapping::TileLoads() const
{
    std::vector<Index> loads(static_cast<std::size_t>(num_tiles), 0);
    for (TileId t : a_nnz_tile) {
        ++loads[static_cast<std::size_t>(t)];
    }
    for (TileId t : l_nnz_tile) {
        ++loads[static_cast<std::size_t>(t)];
    }
    for (TileId t : vec_tile) {
        ++loads[static_cast<std::size_t>(t)];
    }
    return loads;
}

namespace {

/**
 * Counts, for every communication set of matrix m (rows and columns
 * jointly with the vector homes), the induced messages: |tiles| - 1
 * per set.
 *
 * For rows: the set is {tiles of row-i nonzeros} ∪ {home(out_i)}.
 * For cols: the set is {tiles of col-j nonzeros} ∪ {home(in_j)}.
 */
double
MatrixKernelMessages(const CsrMatrix& m,
                     const std::vector<TileId>& nnz_tile,
                     const std::vector<TileId>& vec_tile)
{
    double messages = 0.0;
    // Row sets (reductions into the output home).
    std::unordered_set<TileId> set;
    for (Index r = 0; r < m.rows(); ++r) {
        set.clear();
        for (Index k = m.RowBegin(r); k < m.RowEnd(r); ++k) {
            set.insert(nnz_tile[static_cast<std::size_t>(k)]);
        }
        set.insert(vec_tile[static_cast<std::size_t>(r)]);
        messages += static_cast<double>(set.size() - 1);
    }
    // Column sets (multicasts of the input element). Use the
    // transpose pattern: walk nonzeros grouped by column.
    std::vector<std::vector<TileId>> col_tiles(
        static_cast<std::size_t>(m.cols()));
    for (Index r = 0; r < m.rows(); ++r) {
        for (Index k = m.RowBegin(r); k < m.RowEnd(r); ++k) {
            col_tiles[static_cast<std::size_t>(m.col_idx()[k])].push_back(
                nnz_tile[static_cast<std::size_t>(k)]);
        }
    }
    for (Index c = 0; c < m.cols(); ++c) {
        set.clear();
        for (TileId t : col_tiles[static_cast<std::size_t>(c)]) {
            set.insert(t);
        }
        set.insert(vec_tile[static_cast<std::size_t>(c)]);
        messages += static_cast<double>(set.size() - 1);
    }
    return messages;
}

} // namespace

TrafficEstimate
EstimateTraffic(const MappingProblem& prob, const DataMapping& mapping)
{
    mapping.Validate(prob);
    TrafficEstimate est;
    est.spmv_messages =
        MatrixKernelMessages(*prob.a, mapping.a_nnz_tile,
                             mapping.vec_tile);
    if (prob.l != nullptr) {
        // The forward solve multicasts along columns and reduces along
        // rows; the backward solve (with L^T) does the transpose, but
        // the sets are identical modulo swapping roles, so one pass
        // counts each solve.
        est.sptrsv_messages =
            2.0 * MatrixKernelMessages(*prob.l, mapping.l_nnz_tile,
                                       mapping.vec_tile);
    }
    return est;
}

} // namespace azul
