/**
 * @file
 * Block mapping — Tascade's strategy and the common MPI/HPC layout
 * (Sec III, Sec IV-E): the row-major nonzero enumeration is split into
 * P contiguous chunks of ⌈nnz/P⌉.
 */
#ifndef AZUL_MAPPING_BLOCK_H_
#define AZUL_MAPPING_BLOCK_H_

#include "mapping/mapping.h"

namespace azul {

/** Block (Tascade) mapper. */
class BlockMapper final : public Mapper {
  public:
    std::string name() const override { return "block"; }
    DataMapping Map(const MappingProblem& prob,
                    std::int32_t num_tiles) override;
};

} // namespace azul

#endif // AZUL_MAPPING_BLOCK_H_
