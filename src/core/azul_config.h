/**
 * @file
 * Top-level configuration of an Azul system instance: machine
 * parameters, preprocessing (coloring), preconditioner, mapping
 * strategy, and compiler options.
 */
#ifndef AZUL_CORE_AZUL_CONFIG_H_
#define AZUL_CORE_AZUL_CONFIG_H_

#include <cstdint>
#include <string>

#include "dataflow/program.h"
#include "dataflow/spmv_graph.h"
#include "mapping/mapper_factory.h"
#include "sim/config.h"
#include "solver/preconditioner.h"
#include "util/common.h"
#include "util/status.h"

namespace azul {

/**
 * What to solve and how: iterative method, preconditioner, working
 * precision, and convergence controls, validated as one unit by
 * AzulSystem::Create (docs/SOLVERS.md). This nested spec replaces the
 * flat solver/precond/tol/... fields on AzulOptions, which remain as
 * deprecated aliases for one release (docs/API.md, "Deprecation
 * policy").
 */
struct SolverSpec {
    /** Iterative method the system compiles and runs. */
    SolverKind method = SolverKind::kPcg;
    /** Damping weight of the kJacobi method (ignored otherwise);
     *  must lie in (0, 1]. */
    double jacobi_omega = 2.0 / 3.0;
    /** Restart length m of GMRES(m) (ignored otherwise); every m
     *  inner steps the machine restarts from the true residual. */
    Index restart = 30;
    /**
     * Preconditioner; PCG with IC(0) is the paper's evaluation.
     * kPcg, kBiCgStab and kGmres accept any preconditioner; kJacobi
     * is its own stationary method and requires kIdentity.
     */
    PreconditionerKind precond =
        PreconditionerKind::kIncompleteCholesky;
    /** Relaxation weight when precond = kSsor; must lie in (0, 2). */
    double ssor_omega = 1.0;
    /**
     * Working precision of the machine's iterate storage
     * (sim/config.h PrecisionMode). kFp32 halves vector SRAM and
     * doubles elementwise sweep throughput; the FP64 anchors x and b
     * plus the periodic true-residual recompute bound the accuracy
     * loss (docs/SOLVERS.md, "Mixed precision").
     */
    PrecisionMode precision = PrecisionMode::kFp64;
    /** Relative residual tolerance ||r|| <= tol * ||b||. */
    double tol = 1e-8;
    /** Driver iteration cap; for kGmres each driver iteration is one
     *  restart cycle of `restart` inner steps. */
    Index max_iters = 1000;

    /**
     * Checks the spec as one unit; returns kInvalidArgument with a
     * field-specific message on the first violation. AzulSystem::
     * Create calls this, so standalone use is only needed to validate
     * ahead of time.
     */
    Status Validate() const;

    /** "method=pcg, precond=ic0, precision=fp64, tol=1e-08, ...". */
    std::string ToString() const;
};

/** Everything needed to instantiate an AzulSystem. */
struct AzulOptions {
    /** Machine parameters (Table III, scaled by default). */
    SimConfig sim;
    /**
     * Execution engine behind the solve (sim/execution_engine.h).
     * kCycle (default) is the cycle-accurate Machine — ground truth
     * for all paper figures. kFunctional runs the same compiled
     * program with bit-identical FP64 results but no timing model
     * (serving fast path); it is incompatible with fault injection
     * (Create rejects engine=functional + sim.faults_enabled()).
     */
    EngineKind engine = EngineKind::kCycle;
    /**
     * What to solve and how (method, preconditioner, precision,
     * convergence); validated as one unit by AzulSystem::Create.
     */
    SolverSpec spec;
    /**
     * DEPRECATED flat aliases of the SolverSpec fields, kept for one
     * release (docs/API.md, "Deprecation policy"); removal planned
     * for the next release. A flat field changed from its default is
     * adopted into the spec by ResolvedSpec(); setting both a flat
     * field and its spec counterpart to conflicting values is a
     * kInvalidArgument at Create. New code sets `spec` directly.
     */
    SolverKind solver = SolverKind::kPcg;
    /** DEPRECATED: use spec.jacobi_omega. */
    double jacobi_omega = 2.0 / 3.0;
    /** DEPRECATED: use spec.precond. */
    PreconditionerKind precond =
        PreconditionerKind::kIncompleteCholesky;
    /** DEPRECATED: use spec.ssor_omega. */
    double ssor_omega = 1.0;
    /** Graph-coloring preprocessing (Sec II-A); on by default, as in
     *  all the paper's results. */
    bool color_and_permute = true;
    /** Data-mapping strategy (Fig 23). */
    MapperKind mapper = MapperKind::kAzul;
    AzulMapperOptions azul_mapper;
    /**
     * Precomputed mapping (e.g. from mapping_io's LoadMapping),
     * skipping the mapping step entirely — the cross-run half of the
     * paper's Sec VI-D amortization argument. Must have been computed
     * for the same matrix under the same preprocessing settings; the
     * pointee must outlive system construction. nullptr = compute.
     */
    const DataMapping* precomputed_mapping = nullptr;
    /**
     * Directory of the persistent mapping cache (mapping_cache.h).
     * When set, the mapping step first looks up the content-hash key
     * of (matrix structure, mapper, options) and reuses a stored
     * mapping on a hit; misses compute and persist. Empty string
     * falls back to the AZUL_MAPPING_CACHE environment variable, and
     * if that is unset too, caching is disabled. Ignored when
     * precomputed_mapping is given.
     */
    std::string mapping_cache_dir;
    /** Kernel-compiler options (multicast trees vs point-to-point). */
    GraphOptions graph;
    /** DEPRECATED: use spec.tol. */
    double tol = 1e-8;
    /** DEPRECATED: use spec.max_iters. */
    Index max_iters = 1000;
    /**
     * Time-stepping controls (docs/TIMESTEPPING.md). When warm_start
     * is true, each Solve after the first starts from the session's
     * last solution (r = b - A x0 via the program's warm prologue)
     * instead of x = 0; the first solve — and any solve after warm
     * state was invalidated — falls back to cold cleanly.
     */
    bool warm_start = false;
    /**
     * Explicit initial guess for the first solve, in the caller's
     * original row order. Empty (default) means x0 = 0. A non-empty
     * x0 whose length differs from the matrix dimension is rejected
     * by AzulSystem::Create with kInvalidArgument — never silently
     * ignored.
     */
    Vector x0;
    /**
     * Structure-drift tolerance for UpdateMatrix: when the sparsity
     * pattern changes, the old mapping is inherited onto the new
     * structure and kept as long as its estimated NoC traffic stays
     * within this factor of the nnz-scaled baseline; beyond it, the
     * system repartitions from scratch. Must be >= 1
     * (AzulSystem::Create rejects smaller values).
     */
    double drift_traffic_threshold = 1.25;
    /**
     * When true, AzulSystem::Create fails with RESOURCE_EXHAUSTED if
     * the compiled program does not fit the per-tile scratchpads.
     * When false (default), overflow only logs a warning — the
     * simulator models the spill penalty and many sweeps
     * oversubscribe on purpose.
     */
    bool strict_sram_fit = false;

    /**
     * Merges the deprecated flat solver fields into `spec` and
     * returns the result: a flat field changed from its default wins
     * over a spec field still at its default (so legacy callers keep
     * working unchanged); a flat field and its spec counterpart both
     * changed to *different* values is a kInvalidArgument. Does not
     * run SolverSpec::Validate() — Create does that on the merged
     * spec.
     */
    StatusOr<SolverSpec> ResolvedSpec() const;

    std::string ToString() const;
};

/**
 * Applies the documented environment overrides to `opts` — the single
 * consolidated entry point for env parsing (benches, tools, and the
 * service route through here). Precedence is flags > env > defaults:
 * call this on a default-constructed options struct *before* applying
 * command-line flags, so explicit flags win.
 *
 *   AZUL_SIM_THREADS    host threads for the simulation engine and
 *                       the parallel partitioner (results are
 *                       bit-identical at any thread count)
 *   AZUL_ENGINE         execution engine, "cycle" or "functional"
 *                       (ParseEngineKind; anything else is ignored)
 *   AZUL_SOLVER         iterative method, "jacobi"/"pcg"/"bicgstab"/
 *                       "gmres" (ParseSolverKind; sets spec.method)
 *   AZUL_PRECOND        preconditioner, "none"/"jacobi"/"symgs"/
 *                       "ssor"/"ic0" (ParsePreconditionerKind; sets
 *                       spec.precond)
 *   AZUL_PRECISION      iterate storage precision, "fp64" or "fp32"
 *                       (ParsePrecisionMode; sets spec.precision)
 *   AZUL_MAPPING_CACHE  persistent mapping-cache directory
 *   AZUL_FAULTS         fault-injection spec (ParseFaultSpec format;
 *                       malformed specs are ignored atomically)
 *   AZUL_WARM_START     "1"/"true"/"on" enables warm_start,
 *                       "0"/"false"/"off" disables it (anything else
 *                       is ignored)
 *
 * Unset or invalid variables leave the corresponding fields at their
 * defaults.
 */
void ApplyEnvOverrides(AzulOptions& opts);

/**
 * Seed of the randomized stress/fuzz sweeps from AZUL_STRESS_SEED, or
 * `fallback` when unset/invalid — the reproduction knob printed by a
 * failing stress test (docs/TESTING.md). Lives here with the other
 * env parsing rather than in each test file.
 */
std::uint64_t StressSeedFromEnv(std::uint64_t fallback);

} // namespace azul

#endif // AZUL_CORE_AZUL_CONFIG_H_
