/**
 * @file
 * Top-level configuration of an Azul system instance: machine
 * parameters, preprocessing (coloring), preconditioner, mapping
 * strategy, and compiler options.
 */
#ifndef AZUL_CORE_AZUL_CONFIG_H_
#define AZUL_CORE_AZUL_CONFIG_H_

#include <string>

#include "dataflow/spmv_graph.h"
#include "mapping/mapper_factory.h"
#include "sim/config.h"
#include "solver/preconditioner.h"
#include "util/common.h"

namespace azul {

/** Everything needed to instantiate an AzulSystem. */
struct AzulOptions {
    /** Machine parameters (Table III, scaled by default). */
    SimConfig sim;
    /** Preconditioner; PCG with IC(0) is the paper's evaluation. */
    PreconditionerKind precond =
        PreconditionerKind::kIncompleteCholesky;
    double ssor_omega = 1.0;
    /** Graph-coloring preprocessing (Sec II-A); on by default, as in
     *  all the paper's results. */
    bool color_and_permute = true;
    /** Data-mapping strategy (Fig 23). */
    MapperKind mapper = MapperKind::kAzul;
    AzulMapperOptions azul_mapper;
    /**
     * Precomputed mapping (e.g. from mapping_io's LoadMapping),
     * skipping the mapping step entirely — the cross-run half of the
     * paper's Sec VI-D amortization argument. Must have been computed
     * for the same matrix under the same preprocessing settings; the
     * pointee must outlive system construction. nullptr = compute.
     */
    const DataMapping* precomputed_mapping = nullptr;
    /**
     * Directory of the persistent mapping cache (mapping_cache.h).
     * When set, the mapping step first looks up the content-hash key
     * of (matrix structure, mapper, options) and reuses a stored
     * mapping on a hit; misses compute and persist. Empty string
     * falls back to the AZUL_MAPPING_CACHE environment variable, and
     * if that is unset too, caching is disabled. Ignored when
     * precomputed_mapping is given.
     */
    std::string mapping_cache_dir;
    /** Kernel-compiler options (multicast trees vs point-to-point). */
    GraphOptions graph;
    /** Solver controls. */
    double tol = 1e-8;
    Index max_iters = 1000;

    std::string ToString() const;
};

} // namespace azul

#endif // AZUL_CORE_AZUL_CONFIG_H_
