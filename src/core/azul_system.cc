#include "core/azul_system.h"

#include <chrono>
#include <optional>
#include <sstream>
#include <utility>

#include "mapping/mapping_cache.h"
#include "sim/engine_functional.h"
#include "solver/coloring.h"
#include "util/logging.h"

namespace azul {

namespace {

double
SecondsSince(const std::chrono::steady_clock::time_point& start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Validates everything Create can reject without running the
 *  pipeline; OK means Init may proceed. */
Status
ValidateCreate(const CsrMatrix& a, const AzulOptions& options)
{
    std::ostringstream oss;
    if (a.rows() != a.cols()) {
        oss << "matrix must be square (" << a.rows() << "x"
            << a.cols() << ")";
        return InvalidArgument(oss.str());
    }
    if (a.rows() == 0) {
        return InvalidArgument("empty matrix");
    }
    if (options.sim.grid_width <= 0 || options.sim.grid_height <= 0) {
        oss << "tile grid must be positive ("
            << options.sim.grid_width << "x"
            << options.sim.grid_height << ")";
        return InvalidArgument(oss.str());
    }
    // The solver-related fields (method/precond compatibility,
    // tolerances, omegas) are validated as one unit by
    // SolverSpec::Validate on the merged spec — see Create.
    if (options.precomputed_mapping != nullptr &&
        options.precomputed_mapping->num_tiles !=
            options.sim.num_tiles()) {
        oss << "precomputed mapping targets "
            << options.precomputed_mapping->num_tiles
            << " tiles but the machine has "
            << options.sim.num_tiles();
        return InvalidArgument(oss.str());
    }
    if (options.engine == EngineKind::kFunctional &&
        options.sim.faults_enabled()) {
        return InvalidArgument(
            "engine=functional does not support fault injection "
            "(faults need the cycle-accurate timing model; use "
            "engine=cycle)");
    }
    // Warm-start knobs are never silently ignored (same policy as
    // functional+faults above): an x0 that cannot seed this system is
    // an error, not a no-op.
    if (!options.x0.empty() &&
        static_cast<Index>(options.x0.size()) != a.rows()) {
        oss << "x0 has length " << options.x0.size()
            << " but the matrix is " << a.rows() << "x" << a.cols();
        return InvalidArgument(oss.str());
    }
    if (!(options.drift_traffic_threshold >= 1.0)) {
        oss << "drift_traffic_threshold must be >= 1 (got "
            << options.drift_traffic_threshold << ")";
        return InvalidArgument(oss.str());
    }
    return OkStatus();
}

/** Instantiates the engine selected by the options (Create already
 *  rejected invalid combinations). */
std::unique_ptr<ExecutionEngine>
MakeEngine(const AzulOptions& options, const SolverProgram* program)
{
    if (options.engine == EngineKind::kFunctional) {
        return std::make_unique<FunctionalEngine>(options.sim,
                                                  program);
    }
    return std::make_unique<Machine>(options.sim, program);
}

/** True when the spec's method runs its preconditioner through the
 *  machine's SpTRSV kernels (needs a factored lower triangle). */
bool
NeedsFactor(const SolverSpec& spec)
{
    const bool trisolve_method =
        spec.method == SolverKind::kPcg ||
        spec.method == SolverKind::kBiCgStab ||
        spec.method == SolverKind::kGmres;
    return trisolve_method &&
           (spec.precond == PreconditionerKind::kIncompleteCholesky ||
            spec.precond ==
                PreconditionerKind::kSymmetricGaussSeidel ||
            spec.precond == PreconditionerKind::kSsor);
}

/**
 * Mixed-precision recovery cadence: under FP32 iterate storage, the
 * recurrence residual stalls near single-precision accuracy, so give
 * programs that can recompute the true residual from the FP64
 * anchors a periodic recovery interval unless the program already
 * chose one (docs/SOLVERS.md, "Mixed precision").
 */
void
ApplyPrecisionPolicy(SolverProgram& prog, const SolverSpec& spec)
{
    if (spec.precision == PrecisionMode::kFp32 &&
        !prog.residual_recompute.empty() &&
        prog.convergence.true_residual_interval == 0) {
        prog.convergence.true_residual_interval = 8;
    }
}

} // namespace

StatusOr<AzulSystem>
AzulSystem::Create(CsrMatrix a, AzulOptions options)
{
    AZUL_RETURN_IF_ERROR(ValidateCreate(a, options));
    // Merge the deprecated flat solver fields into the nested spec
    // and validate the result as one unit.
    StatusOr<SolverSpec> resolved = options.ResolvedSpec();
    if (!resolved.ok()) {
        return resolved.status();
    }
    AZUL_RETURN_IF_ERROR(resolved->Validate());
    AzulSystem sys;
    sys.options_ = std::move(options);
    // The merged spec is the single source of truth from here on;
    // mirror it back into the deprecated flat aliases so legacy
    // readers of options() observe consistent values.
    sys.options_.spec = *resolved;
    sys.options_.solver = resolved->method;           // deprecated-alias-shim
    sys.options_.jacobi_omega = resolved->jacobi_omega; // deprecated-alias-shim
    sys.options_.precond = resolved->precond;         // deprecated-alias-shim
    sys.options_.ssor_omega = resolved->ssor_omega;   // deprecated-alias-shim
    sys.options_.tol = resolved->tol;                 // deprecated-alias-shim
    sys.options_.max_iters = resolved->max_iters;     // deprecated-alias-shim
    // The working precision rides into the engines on SimConfig.
    sys.options_.sim.precision = resolved->precision;
    try {
        sys.Init(std::move(a));
    } catch (const AzulError& e) {
        // The pipeline's own validation tripped on user input the
        // upfront checks cannot see (e.g. a structurally invalid
        // precomputed mapping, a zero Jacobi diagonal).
        return InvalidArgument(e.what());
    }
    if (sys.options_.strict_sram_fit) {
        const SramUsage usage = sys.sram_usage();
        if (!usage.fits) {
            std::ostringstream oss;
            oss << "problem exceeds per-tile SRAM: data="
                << usage.max_data_bytes << " B, accum="
                << usage.max_accum_bytes << " B (configured "
                << sys.options_.sim.data_sram_kb << "+"
                << sys.options_.sim.accum_sram_kb << " KB)";
            return ResourceExhausted(oss.str());
        }
    }
    return sys;
}

void
AzulSystem::Init(CsrMatrix a)
{
    // 0. Warm-start bookkeeping: the structure hash is taken in the
    // caller's row order (permutation-independent), so it can be
    // compared across restarts and against incoming matrices.
    structure_hash_ = StructureHash(a);
    if (!options_.x0.empty()) {
        last_x_ = options_.x0; // validated by Create
        x0_pending_ = true;
    }

    // 1. Coloring + permutation preprocessing.
    if (options_.color_and_permute) {
        ColoredMatrix colored = ColorAndPermute(a);
        a_ = std::move(colored.a);
        perm_ = std::move(colored.perm);
        AZUL_LOG(kInfo) << "colored with " << colored.num_colors
                        << " colors";
    } else {
        a_ = std::move(a);
        perm_ = Permutation(a_.rows());
    }

    // 2. Preconditioner factorization for the trisolve-based kinds
    // (PCG, BiCGStab and GMRES all accept them; kJacobi is its own
    // stationary method — the spec validation enforced precond=none).
    const SolverSpec& spec = options_.spec;
    const bool factored = NeedsFactor(spec);
    if (factored) {
        const auto precond =
            MakePreconditioner(spec.precond, a_, spec.ssor_omega);
        l_ = *precond->lower_factor();
    }

    // 3. Data mapping.
    MappingProblem prob;
    prob.a = &a_;
    prob.l = factored ? &l_ : nullptr;
    if (options_.precomputed_mapping != nullptr) {
        mapping_ = *options_.precomputed_mapping;
        mapping_.Validate(prob);
    } else {
        AzulMapperOptions mopts = options_.azul_mapper;
        mopts.grid_width = options_.sim.grid_width;
        mopts.grid_height = options_.sim.grid_height;
        const auto mapper = MakeMapper(options_.mapper, mopts);
        MappingCache cache(options_.mapping_cache_dir.empty()
                               ? MappingCache::DirFromEnv()
                               : options_.mapping_cache_dir);
        const std::uint64_t key =
            cache.enabled()
                ? MappingCacheKey(prob, mapper->name(),
                                  options_.sim.num_tiles(), mopts)
                : 0;
        const auto t0 = std::chrono::steady_clock::now();
        std::optional<DataMapping> cached =
            cache.enabled()
                ? cache.TryLoad(key, prob, options_.sim.num_tiles())
                : std::nullopt;
        if (cached.has_value()) {
            mapping_ = *std::move(cached);
            mapping_seconds_ = SecondsSince(t0);
            AZUL_LOG(kInfo) << "mapping cache hit ("
                            << cache.PathForKey(key) << ")";
        } else {
            mapping_ = mapper->Map(prob, options_.sim.num_tiles());
            mapping_seconds_ = SecondsSince(t0);
            mapping_.Validate(prob);
            if (cache.enabled()) {
                cache.Store(key, mapping_);
            }
            AZUL_LOG(kInfo) << "mapped with " << mapper->name()
                            << " in " << mapping_seconds_ << " s";
        }
        mapping_cache_hits_ = cache.hits();
        mapping_cache_misses_ = cache.misses();
    }
    // Drift baseline: what "good" traffic looks like for this
    // structure under this mapping (UpdateMatrix scales it by nnz).
    baseline_traffic_ = EstimateTraffic(prob, mapping_).total();
    baseline_nnz_ = a_.nnz();

    // 4. Dataflow compilation.
    {
        ProgramBuildInputs in;
        in.a = &a_;
        in.l = factored ? &l_ : nullptr;
        in.precond = spec.precond;
        in.mapping = &mapping_;
        in.geom = options_.sim.geometry();
        in.graph = options_.graph;
        in.jacobi_omega = spec.jacobi_omega;
        in.restart = spec.restart;
        const auto t0 = std::chrono::steady_clock::now();
        program_ = std::make_unique<SolverProgram>(
            BuildSolverProgram(spec.method, in));
        ApplyPrecisionPolicy(*program_, spec);
        compile_seconds_ = SecondsSince(t0);
    }

    // 5. Execution-engine instantiation (options_.engine).
    engine_ = MakeEngine(options_, program_.get());
    const SramUsage usage = sram_usage();
    if (!usage.fits) {
        AZUL_LOG(kWarn)
            << "problem exceeds per-tile SRAM: data="
            << usage.max_data_bytes << " B, accum="
            << usage.max_accum_bytes << " B (configured "
            << options_.sim.data_sram_kb << "+"
            << options_.sim.accum_sram_kb << " KB)";
    }
}

SramUsage
AzulSystem::sram_usage() const
{
    return ComputeSramUsage(*program_, options_.sim);
}

SolveReport
AzulSystem::Solve(const Vector& b)
{
    return Solve(b, RunBudget{});
}

SolveReport
AzulSystem::Solve(const Vector& b, const RunBudget& budget)
{
    // Auto warm-start: the session-resident last solution (seeded
    // from options().x0 before the first solve). An explicit x0 is
    // honored exactly once even with warm_start off — Create already
    // rejected any x0 it could not honor.
    const bool auto_warm =
        !last_x_.empty() && (options_.warm_start || x0_pending_);
    x0_pending_ = false;
    return Solve(b, budget, auto_warm ? last_x_ : Vector());
}

SolveReport
AzulSystem::Solve(const Vector& b, const RunBudget& budget,
                  const Vector& x0)
{
    AZUL_CHECK(static_cast<Index>(b.size()) == a_.rows());
    const bool warm = !x0.empty();
    AZUL_CHECK_MSG(!warm || x0.size() == b.size(),
                   "x0 length " << x0.size() << " != rhs length "
                                << b.size());
    const Vector b_perm = PermuteVector(b, perm_);
    const Vector x0_perm = warm ? PermuteVector(x0, perm_) : Vector();
    SolveReport report;
    report.engine = options_.engine;
    report.warm_started = warm;
    report.spec = options_.spec;
    report.run =
        SolverDriver().Run(*engine_, b_perm, options_.spec.tol,
                           options_.spec.max_iters, budget,
                           warm ? &x0_perm : nullptr);
    report.run.x = UnpermuteVector(report.run.x, perm_);
    last_x_ = report.run.x;
    x0_pending_ = false;
    if (warm) {
        ++warm_solves_;
    } else {
        ++cold_solves_;
    }
    report.mapping_reuses = mapping_reuses_;
    report.repartitions = repartitions_;
    report.gflops = report.run.Gflops(options_.sim.clock_ghz);
    report.peak_fraction = report.gflops / options_.sim.PeakGflops();
    report.mapping_seconds = mapping_seconds_;
    report.compile_seconds = compile_seconds_;
    report.mapping_cache_hits = mapping_cache_hits_;
    report.mapping_cache_misses = mapping_cache_misses_;
    report.solve_seconds = static_cast<double>(report.run.stats.cycles) /
                           (options_.sim.clock_ghz * 1e9);
    report.sram = sram_usage();
    report.power = ComputePower(report.run.stats, options_.sim);
    return report;
}

Status
AzulSystem::UpdateValues(const CsrMatrix& a_new)
{
    if (a_new.rows() != a_.rows() || a_new.nnz() != a_.nnz()) {
        std::ostringstream oss;
        oss << "UpdateValues requires the same sparsity pattern (got "
            << a_new.rows() << "x" << a_new.cols() << " with "
            << a_new.nnz() << " nnz; expected " << a_.rows() << "x"
            << a_.cols() << " with " << a_.nnz() << " nnz)";
        return InvalidArgument(oss.str());
    }
    CsrMatrix permuted = PermuteSymmetric(a_new, perm_);
    if (permuted.col_idx() != a_.col_idx() ||
        permuted.row_ptr() != a_.row_ptr()) {
        return InvalidArgument(
            "UpdateValues requires the same sparsity pattern");
    }
    try {
        a_ = std::move(permuted);
        const bool factored = l_.nnz() > 0;
        if (factored) {
            const auto precond =
                MakePreconditioner(options_.spec.precond, a_,
                                   options_.spec.ssor_omega);
            l_ = *precond->lower_factor();
        }
        // Recompile kernels in place: mapping and machine geometry
        // are unchanged, so only the coefficient tables change. The
        // warm state (last_x_, original row order) stays resident.
        RecompileForCurrentMatrix();
    } catch (const AzulError& e) {
        // Refactorization/recompilation rejected the new values
        // (e.g. a zero Jacobi diagonal).
        return InvalidArgument(e.what());
    }
    return OkStatus();
}

void
AzulSystem::RecompileForCurrentMatrix()
{
    const SolverSpec& spec = options_.spec;
    const bool factored = l_.nnz() > 0;
    ProgramBuildInputs in;
    in.a = &a_;
    in.l = factored ? &l_ : nullptr;
    in.precond = spec.precond;
    in.mapping = &mapping_;
    in.geom = options_.sim.geometry();
    in.graph = options_.graph;
    in.jacobi_omega = spec.jacobi_omega;
    in.restart = spec.restart;
    program_ = std::make_unique<SolverProgram>(
        BuildSolverProgram(spec.method, in));
    ApplyPrecisionPolicy(*program_, spec);
    engine_ = MakeEngine(options_, program_.get());
}

Status
AzulSystem::UpdateMatrix(const CsrMatrix& a_new)
{
    if (a_new.rows() != a_.rows() || a_new.cols() != a_.cols()) {
        std::ostringstream oss;
        oss << "UpdateMatrix requires the same dimensions (got "
            << a_new.rows() << "x" << a_new.cols() << "; expected "
            << a_.rows() << "x" << a_.cols() << ")";
        return InvalidArgument(oss.str());
    }
    const std::uint64_t new_hash = StructureHash(a_new);
    if (new_hash == structure_hash_) {
        // Same sparsity pattern: the cheap per-timestep path.
        return UpdateValues(a_new);
    }

    // Pattern drift: re-color, then decide between inheriting the
    // resident mapping and repartitioning from scratch
    // (docs/TIMESTEPPING.md). All throwing work happens on locals so
    // a rejected matrix leaves the system untouched.
    try {
        CsrMatrix a2;
        Permutation perm2;
        if (options_.color_and_permute) {
            ColoredMatrix colored = ColorAndPermute(a_new);
            a2 = std::move(colored.a);
            perm2 = std::move(colored.perm);
        } else {
            a2 = a_new;
            perm2 = Permutation(a_new.rows());
        }
        CsrMatrix l2;
        const bool factored = l_.nnz() > 0;
        if (factored) {
            const auto precond =
                MakePreconditioner(options_.spec.precond, a2,
                                   options_.spec.ssor_omega);
            l2 = *precond->lower_factor();
        }
        MappingProblem prob;
        prob.a = &a2;
        prob.l = factored ? &l2 : nullptr;

        // Inherit the old mapping onto the new structure: every row
        // keeps its vector home (identified through original row
        // order, so the two permutations cancel out), and each new
        // nonzero lands on its row's home tile — the natural delta
        // when per-nonzero identities did not survive the drift.
        DataMapping inherited;
        inherited.num_tiles = mapping_.num_tiles;
        const Index n = a2.rows();
        inherited.vec_tile.resize(static_cast<std::size_t>(n));
        for (Index i = 0; i < n; ++i) {
            const Index orig = perm2.NewToOld(i);
            inherited.vec_tile[static_cast<std::size_t>(i)] =
                mapping_.vec_tile[static_cast<std::size_t>(
                    perm_.OldToNew(orig))];
        }
        const auto row_home_tiles = [&inherited](const CsrMatrix& m) {
            std::vector<TileId> tiles(
                static_cast<std::size_t>(m.nnz()));
            for (Index i = 0; i < m.rows(); ++i) {
                for (Index k = m.row_ptr()[static_cast<std::size_t>(i)];
                     k < m.row_ptr()[static_cast<std::size_t>(i + 1)];
                     ++k) {
                    tiles[static_cast<std::size_t>(k)] =
                        inherited.vec_tile[static_cast<std::size_t>(i)];
                }
            }
            return tiles;
        };
        inherited.a_nnz_tile = row_home_tiles(a2);
        if (factored) {
            inherited.l_nnz_tile = row_home_tiles(l2);
        }
        inherited.Validate(prob);

        // Drift check: keep the inherited mapping while its estimated
        // traffic stays within the threshold of the nnz-scaled
        // baseline; beyond that the structure has drifted too far and
        // a fresh partition pays for itself.
        const double inherited_traffic =
            EstimateTraffic(prob, inherited).total();
        const double scaled_baseline =
            baseline_traffic_ * static_cast<double>(a2.nnz()) /
            static_cast<double>(std::max<Index>(baseline_nnz_, 1));
        if (inherited_traffic <=
            options_.drift_traffic_threshold * scaled_baseline) {
            mapping_ = std::move(inherited);
            ++mapping_reuses_;
            AZUL_LOG(kInfo)
                << "UpdateMatrix: pattern drift within threshold, "
                   "inherited mapping (traffic "
                << inherited_traffic << " <= "
                << options_.drift_traffic_threshold << " * "
                << scaled_baseline << ")";
        } else {
            AzulMapperOptions mopts = options_.azul_mapper;
            mopts.grid_width = options_.sim.grid_width;
            mopts.grid_height = options_.sim.grid_height;
            const auto mapper = MakeMapper(options_.mapper, mopts);
            const auto t0 = std::chrono::steady_clock::now();
            mapping_ = mapper->Map(prob, options_.sim.num_tiles());
            mapping_seconds_ = SecondsSince(t0);
            mapping_.Validate(prob);
            ++repartitions_;
            baseline_traffic_ = EstimateTraffic(prob, mapping_).total();
            baseline_nnz_ = a2.nnz();
            AZUL_LOG(kInfo)
                << "UpdateMatrix: drift beyond threshold, "
                   "repartitioned in "
                << mapping_seconds_ << " s";
        }

        a_ = std::move(a2);
        l_ = std::move(l2);
        perm_ = std::move(perm2);
        structure_hash_ = new_hash;
        RecompileForCurrentMatrix();
    } catch (const AzulError& e) {
        return InvalidArgument(e.what());
    }
    // The warm state survives: last_x_ lives in original row order,
    // independent of permutation and mapping.
    return OkStatus();
}

Status
AzulSystem::SeedWarmState(Vector x)
{
    if (static_cast<Index>(x.size()) != a_.rows()) {
        std::ostringstream oss;
        oss << "SeedWarmState: x has length " << x.size()
            << " but the matrix is " << a_.rows() << "x" << a_.cols();
        return InvalidArgument(oss.str());
    }
    last_x_ = std::move(x);
    x0_pending_ = false;
    return OkStatus();
}

SimStats
AzulSystem::RunKernelOnce(int matrix_kernel_index, const Vector& input)
{
    AZUL_CHECK(matrix_kernel_index >= 0 &&
               matrix_kernel_index <
                   static_cast<int>(program_->matrix_kernels.size()));
    const MatrixKernel& kernel =
        program_->matrix_kernels[static_cast<std::size_t>(
            matrix_kernel_index)];
    // machine() checks the engine kind: per-kernel cycle counts only
    // exist under the cycle engine.
    Machine& m = machine();
    m.LoadProblem(Vector(input.size(), 0.0));
    const Vector in_perm = PermuteVector(input, perm_);
    // Seed the kernel's input and rhs vectors.
    m.ScatterVector(kernel.input_vec, in_perm);
    if (kernel.rhs_vec != VecName::kCount) {
        m.ScatterVector(kernel.rhs_vec, in_perm);
    }
    return m.RunMatrixKernelStandalone(matrix_kernel_index);
}

} // namespace azul
