#include "core/azul_system.h"

#include <chrono>
#include <optional>
#include <utility>

#include "mapping/mapping_cache.h"
#include "solver/coloring.h"
#include "util/logging.h"

namespace azul {

namespace {

double
SecondsSince(const std::chrono::steady_clock::time_point& start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

AzulSystem::AzulSystem(CsrMatrix a, AzulOptions options)
    : options_(std::move(options))
{
    AZUL_CHECK(a.rows() == a.cols());
    AZUL_CHECK_MSG(a.rows() > 0, "empty matrix");

    // 1. Coloring + permutation preprocessing.
    if (options_.color_and_permute) {
        ColoredMatrix colored = ColorAndPermute(a);
        a_ = std::move(colored.a);
        perm_ = std::move(colored.perm);
        AZUL_LOG(kInfo) << "colored with " << colored.num_colors
                        << " colors";
    } else {
        a_ = std::move(a);
        perm_ = Permutation(a_.rows());
    }

    // 2. Preconditioner factorization.
    const bool factored =
        options_.precond == PreconditionerKind::kIncompleteCholesky ||
        options_.precond == PreconditionerKind::kSymmetricGaussSeidel ||
        options_.precond == PreconditionerKind::kSsor;
    if (factored) {
        const auto precond = MakePreconditioner(
            options_.precond, a_, options_.ssor_omega);
        l_ = *precond->lower_factor();
    }

    // 3. Data mapping.
    MappingProblem prob;
    prob.a = &a_;
    prob.l = factored ? &l_ : nullptr;
    if (options_.precomputed_mapping != nullptr) {
        mapping_ = *options_.precomputed_mapping;
        AZUL_CHECK_MSG(mapping_.num_tiles == options_.sim.num_tiles(),
                       "precomputed mapping targets a different "
                       "machine size");
        mapping_.Validate(prob);
    } else {
        AzulMapperOptions mopts = options_.azul_mapper;
        mopts.grid_width = options_.sim.grid_width;
        mopts.grid_height = options_.sim.grid_height;
        const auto mapper = MakeMapper(options_.mapper, mopts);
        MappingCache cache(options_.mapping_cache_dir.empty()
                               ? MappingCache::DirFromEnv()
                               : options_.mapping_cache_dir);
        const std::uint64_t key =
            cache.enabled()
                ? MappingCacheKey(prob, mapper->name(),
                                  options_.sim.num_tiles(), mopts)
                : 0;
        const auto t0 = std::chrono::steady_clock::now();
        std::optional<DataMapping> cached =
            cache.enabled()
                ? cache.TryLoad(key, prob, options_.sim.num_tiles())
                : std::nullopt;
        if (cached.has_value()) {
            mapping_ = *std::move(cached);
            mapping_seconds_ = SecondsSince(t0);
            AZUL_LOG(kInfo) << "mapping cache hit ("
                            << cache.PathForKey(key) << ")";
        } else {
            mapping_ = mapper->Map(prob, options_.sim.num_tiles());
            mapping_seconds_ = SecondsSince(t0);
            mapping_.Validate(prob);
            if (cache.enabled()) {
                cache.Store(key, mapping_);
            }
            AZUL_LOG(kInfo) << "mapped with " << mapper->name()
                            << " in " << mapping_seconds_ << " s";
        }
        mapping_cache_hits_ = cache.hits();
        mapping_cache_misses_ = cache.misses();
    }

    // 4. Dataflow compilation.
    {
        ProgramBuildInputs in;
        in.a = &a_;
        in.l = factored ? &l_ : nullptr;
        in.precond = options_.precond;
        in.mapping = &mapping_;
        in.geom = options_.sim.geometry();
        in.graph = options_.graph;
        const auto t0 = std::chrono::steady_clock::now();
        program_ = BuildPcgProgram(in);
        compile_seconds_ = SecondsSince(t0);
    }

    // 5. Machine instantiation.
    machine_ = std::make_unique<Machine>(options_.sim, &program_);
    const SramUsage usage = sram_usage();
    if (!usage.fits) {
        AZUL_LOG(kWarn)
            << "problem exceeds per-tile SRAM: data="
            << usage.max_data_bytes << " B, accum="
            << usage.max_accum_bytes << " B (configured "
            << options_.sim.data_sram_kb << "+"
            << options_.sim.accum_sram_kb << " KB)";
    }
}

SramUsage
AzulSystem::sram_usage() const
{
    return ComputeSramUsage(program_, options_.sim);
}

SolveReport
AzulSystem::Solve(const Vector& b)
{
    AZUL_CHECK(static_cast<Index>(b.size()) == a_.rows());
    const Vector b_perm = PermuteVector(b, perm_);
    SolveReport report;
    report.run = SolverDriver().Run(*machine_, b_perm, options_.tol,
                                    options_.max_iters);
    report.run.x = UnpermuteVector(report.run.x, perm_);
    report.gflops = report.run.Gflops(options_.sim.clock_ghz);
    report.peak_fraction = report.gflops / options_.sim.PeakGflops();
    report.mapping_seconds = mapping_seconds_;
    report.compile_seconds = compile_seconds_;
    report.mapping_cache_hits = mapping_cache_hits_;
    report.mapping_cache_misses = mapping_cache_misses_;
    report.solve_seconds = static_cast<double>(report.run.stats.cycles) /
                           (options_.sim.clock_ghz * 1e9);
    report.sram = sram_usage();
    report.power = ComputePower(report.run.stats, options_.sim);
    return report;
}

void
AzulSystem::UpdateValues(const CsrMatrix& a_new)
{
    AZUL_CHECK_MSG(a_new.rows() == a_.rows() &&
                       a_new.nnz() == a_.nnz(),
                   "UpdateValues requires the same sparsity pattern");
    CsrMatrix permuted = PermuteSymmetric(a_new, perm_);
    AZUL_CHECK_MSG(permuted.col_idx() == a_.col_idx() &&
                       permuted.row_ptr() == a_.row_ptr(),
                   "UpdateValues requires the same sparsity pattern");
    a_ = std::move(permuted);
    const bool factored = l_.nnz() > 0;
    if (factored) {
        const auto precond = MakePreconditioner(
            options_.precond, a_, options_.ssor_omega);
        l_ = *precond->lower_factor();
    }
    // Recompile kernels in place: mapping and machine geometry are
    // unchanged, so only the coefficient tables change.
    ProgramBuildInputs in;
    in.a = &a_;
    in.l = factored ? &l_ : nullptr;
    in.precond = options_.precond;
    in.mapping = &mapping_;
    in.geom = options_.sim.geometry();
    in.graph = options_.graph;
    program_ = BuildPcgProgram(in);
    machine_ = std::make_unique<Machine>(options_.sim, &program_);
}

SimStats
AzulSystem::RunKernelOnce(int matrix_kernel_index, const Vector& input)
{
    AZUL_CHECK(matrix_kernel_index >= 0 &&
               matrix_kernel_index <
                   static_cast<int>(program_.matrix_kernels.size()));
    const MatrixKernel& kernel =
        program_.matrix_kernels[static_cast<std::size_t>(
            matrix_kernel_index)];
    machine_->LoadProblem(Vector(input.size(), 0.0));
    const Vector in_perm = PermuteVector(input, perm_);
    // Seed the kernel's input and rhs vectors.
    machine_->ScatterVector(kernel.input_vec, in_perm);
    if (kernel.rhs_vec != VecName::kCount) {
        machine_->ScatterVector(kernel.rhs_vec, in_perm);
    }
    return machine_->RunMatrixKernelStandalone(matrix_kernel_index);
}

} // namespace azul
