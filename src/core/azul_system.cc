#include "core/azul_system.h"

#include <chrono>
#include <optional>
#include <sstream>
#include <utility>

#include "mapping/mapping_cache.h"
#include "sim/engine_functional.h"
#include "solver/coloring.h"
#include "util/logging.h"

namespace azul {

namespace {

double
SecondsSince(const std::chrono::steady_clock::time_point& start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Validates everything Create can reject without running the
 *  pipeline; OK means Init may proceed. */
Status
ValidateCreate(const CsrMatrix& a, const AzulOptions& options)
{
    std::ostringstream oss;
    if (a.rows() != a.cols()) {
        oss << "matrix must be square (" << a.rows() << "x"
            << a.cols() << ")";
        return InvalidArgument(oss.str());
    }
    if (a.rows() == 0) {
        return InvalidArgument("empty matrix");
    }
    if (options.sim.grid_width <= 0 || options.sim.grid_height <= 0) {
        oss << "tile grid must be positive ("
            << options.sim.grid_width << "x"
            << options.sim.grid_height << ")";
        return InvalidArgument(oss.str());
    }
    if (!(options.tol >= 0.0)) {
        oss << "tolerance must be >= 0 (got " << options.tol << ")";
        return InvalidArgument(oss.str());
    }
    if (options.max_iters < 0) {
        oss << "max_iters must be >= 0 (got " << options.max_iters
            << ")";
        return InvalidArgument(oss.str());
    }
    if (options.solver != SolverKind::kPcg &&
        options.precond != PreconditionerKind::kIdentity) {
        oss << "solver " << SolverKindName(options.solver)
            << " is its own method and supports only precond=none "
               "(got "
            << PreconditionerKindName(options.precond) << ")";
        return InvalidArgument(oss.str());
    }
    if (options.solver == SolverKind::kJacobi &&
        !(options.jacobi_omega > 0.0 &&
          options.jacobi_omega <= 1.0)) {
        oss << "jacobi_omega must be in (0, 1] (got "
            << options.jacobi_omega << ")";
        return InvalidArgument(oss.str());
    }
    if (options.precomputed_mapping != nullptr &&
        options.precomputed_mapping->num_tiles !=
            options.sim.num_tiles()) {
        oss << "precomputed mapping targets "
            << options.precomputed_mapping->num_tiles
            << " tiles but the machine has "
            << options.sim.num_tiles();
        return InvalidArgument(oss.str());
    }
    if (options.engine == EngineKind::kFunctional &&
        options.sim.faults_enabled()) {
        return InvalidArgument(
            "engine=functional does not support fault injection "
            "(faults need the cycle-accurate timing model; use "
            "engine=cycle)");
    }
    return OkStatus();
}

/** Instantiates the engine selected by the options (Create already
 *  rejected invalid combinations). */
std::unique_ptr<ExecutionEngine>
MakeEngine(const AzulOptions& options, const SolverProgram* program)
{
    if (options.engine == EngineKind::kFunctional) {
        return std::make_unique<FunctionalEngine>(options.sim,
                                                  program);
    }
    return std::make_unique<Machine>(options.sim, program);
}

} // namespace

StatusOr<AzulSystem>
AzulSystem::Create(CsrMatrix a, AzulOptions options)
{
    AZUL_RETURN_IF_ERROR(ValidateCreate(a, options));
    AzulSystem sys;
    sys.options_ = std::move(options);
    try {
        sys.Init(std::move(a));
    } catch (const AzulError& e) {
        // The pipeline's own validation tripped on user input the
        // upfront checks cannot see (e.g. a structurally invalid
        // precomputed mapping, a zero Jacobi diagonal).
        return InvalidArgument(e.what());
    }
    if (sys.options_.strict_sram_fit) {
        const SramUsage usage = sys.sram_usage();
        if (!usage.fits) {
            std::ostringstream oss;
            oss << "problem exceeds per-tile SRAM: data="
                << usage.max_data_bytes << " B, accum="
                << usage.max_accum_bytes << " B (configured "
                << sys.options_.sim.data_sram_kb << "+"
                << sys.options_.sim.accum_sram_kb << " KB)";
            return ResourceExhausted(oss.str());
        }
    }
    return sys;
}

void
AzulSystem::Init(CsrMatrix a)
{
    // 1. Coloring + permutation preprocessing.
    if (options_.color_and_permute) {
        ColoredMatrix colored = ColorAndPermute(a);
        a_ = std::move(colored.a);
        perm_ = std::move(colored.perm);
        AZUL_LOG(kInfo) << "colored with " << colored.num_colors
                        << " colors";
    } else {
        a_ = std::move(a);
        perm_ = Permutation(a_.rows());
    }

    // 2. Preconditioner factorization (kPcg only; the other solver
    // kinds are their own methods — Create enforces precond=none).
    const bool factored =
        options_.solver == SolverKind::kPcg &&
        (options_.precond == PreconditionerKind::kIncompleteCholesky ||
         options_.precond == PreconditionerKind::kSymmetricGaussSeidel ||
         options_.precond == PreconditionerKind::kSsor);
    if (factored) {
        const auto precond = MakePreconditioner(
            options_.precond, a_, options_.ssor_omega);
        l_ = *precond->lower_factor();
    }

    // 3. Data mapping.
    MappingProblem prob;
    prob.a = &a_;
    prob.l = factored ? &l_ : nullptr;
    if (options_.precomputed_mapping != nullptr) {
        mapping_ = *options_.precomputed_mapping;
        mapping_.Validate(prob);
    } else {
        AzulMapperOptions mopts = options_.azul_mapper;
        mopts.grid_width = options_.sim.grid_width;
        mopts.grid_height = options_.sim.grid_height;
        const auto mapper = MakeMapper(options_.mapper, mopts);
        MappingCache cache(options_.mapping_cache_dir.empty()
                               ? MappingCache::DirFromEnv()
                               : options_.mapping_cache_dir);
        const std::uint64_t key =
            cache.enabled()
                ? MappingCacheKey(prob, mapper->name(),
                                  options_.sim.num_tiles(), mopts)
                : 0;
        const auto t0 = std::chrono::steady_clock::now();
        std::optional<DataMapping> cached =
            cache.enabled()
                ? cache.TryLoad(key, prob, options_.sim.num_tiles())
                : std::nullopt;
        if (cached.has_value()) {
            mapping_ = *std::move(cached);
            mapping_seconds_ = SecondsSince(t0);
            AZUL_LOG(kInfo) << "mapping cache hit ("
                            << cache.PathForKey(key) << ")";
        } else {
            mapping_ = mapper->Map(prob, options_.sim.num_tiles());
            mapping_seconds_ = SecondsSince(t0);
            mapping_.Validate(prob);
            if (cache.enabled()) {
                cache.Store(key, mapping_);
            }
            AZUL_LOG(kInfo) << "mapped with " << mapper->name()
                            << " in " << mapping_seconds_ << " s";
        }
        mapping_cache_hits_ = cache.hits();
        mapping_cache_misses_ = cache.misses();
    }

    // 4. Dataflow compilation.
    {
        ProgramBuildInputs in;
        in.a = &a_;
        in.l = factored ? &l_ : nullptr;
        in.precond = options_.precond;
        in.mapping = &mapping_;
        in.geom = options_.sim.geometry();
        in.graph = options_.graph;
        in.jacobi_omega = options_.jacobi_omega;
        const auto t0 = std::chrono::steady_clock::now();
        program_ = std::make_unique<SolverProgram>(
            BuildSolverProgram(options_.solver, in));
        compile_seconds_ = SecondsSince(t0);
    }

    // 5. Execution-engine instantiation (options_.engine).
    engine_ = MakeEngine(options_, program_.get());
    const SramUsage usage = sram_usage();
    if (!usage.fits) {
        AZUL_LOG(kWarn)
            << "problem exceeds per-tile SRAM: data="
            << usage.max_data_bytes << " B, accum="
            << usage.max_accum_bytes << " B (configured "
            << options_.sim.data_sram_kb << "+"
            << options_.sim.accum_sram_kb << " KB)";
    }
}

SramUsage
AzulSystem::sram_usage() const
{
    return ComputeSramUsage(*program_, options_.sim);
}

SolveReport
AzulSystem::Solve(const Vector& b)
{
    return Solve(b, RunBudget{});
}

SolveReport
AzulSystem::Solve(const Vector& b, const RunBudget& budget)
{
    AZUL_CHECK(static_cast<Index>(b.size()) == a_.rows());
    const Vector b_perm = PermuteVector(b, perm_);
    SolveReport report;
    report.engine = options_.engine;
    report.run = SolverDriver().Run(*engine_, b_perm, options_.tol,
                                    options_.max_iters, budget);
    report.run.x = UnpermuteVector(report.run.x, perm_);
    report.gflops = report.run.Gflops(options_.sim.clock_ghz);
    report.peak_fraction = report.gflops / options_.sim.PeakGflops();
    report.mapping_seconds = mapping_seconds_;
    report.compile_seconds = compile_seconds_;
    report.mapping_cache_hits = mapping_cache_hits_;
    report.mapping_cache_misses = mapping_cache_misses_;
    report.solve_seconds = static_cast<double>(report.run.stats.cycles) /
                           (options_.sim.clock_ghz * 1e9);
    report.sram = sram_usage();
    report.power = ComputePower(report.run.stats, options_.sim);
    return report;
}

Status
AzulSystem::UpdateValues(const CsrMatrix& a_new)
{
    if (a_new.rows() != a_.rows() || a_new.nnz() != a_.nnz()) {
        std::ostringstream oss;
        oss << "UpdateValues requires the same sparsity pattern (got "
            << a_new.rows() << "x" << a_new.cols() << " with "
            << a_new.nnz() << " nnz; expected " << a_.rows() << "x"
            << a_.cols() << " with " << a_.nnz() << " nnz)";
        return InvalidArgument(oss.str());
    }
    CsrMatrix permuted = PermuteSymmetric(a_new, perm_);
    if (permuted.col_idx() != a_.col_idx() ||
        permuted.row_ptr() != a_.row_ptr()) {
        return InvalidArgument(
            "UpdateValues requires the same sparsity pattern");
    }
    try {
        a_ = std::move(permuted);
        const bool factored = l_.nnz() > 0;
        if (factored) {
            const auto precond = MakePreconditioner(
                options_.precond, a_, options_.ssor_omega);
            l_ = *precond->lower_factor();
        }
        // Recompile kernels in place: mapping and machine geometry
        // are unchanged, so only the coefficient tables change.
        ProgramBuildInputs in;
        in.a = &a_;
        in.l = factored ? &l_ : nullptr;
        in.precond = options_.precond;
        in.mapping = &mapping_;
        in.geom = options_.sim.geometry();
        in.graph = options_.graph;
        in.jacobi_omega = options_.jacobi_omega;
        program_ = std::make_unique<SolverProgram>(
            BuildSolverProgram(options_.solver, in));
        engine_ = MakeEngine(options_, program_.get());
    } catch (const AzulError& e) {
        // Refactorization/recompilation rejected the new values
        // (e.g. a zero Jacobi diagonal).
        return InvalidArgument(e.what());
    }
    return OkStatus();
}

SimStats
AzulSystem::RunKernelOnce(int matrix_kernel_index, const Vector& input)
{
    AZUL_CHECK(matrix_kernel_index >= 0 &&
               matrix_kernel_index <
                   static_cast<int>(program_->matrix_kernels.size()));
    const MatrixKernel& kernel =
        program_->matrix_kernels[static_cast<std::size_t>(
            matrix_kernel_index)];
    // machine() checks the engine kind: per-kernel cycle counts only
    // exist under the cycle engine.
    Machine& m = machine();
    m.LoadProblem(Vector(input.size(), 0.0));
    const Vector in_perm = PermuteVector(input, perm_);
    // Seed the kernel's input and rhs vectors.
    m.ScatterVector(kernel.input_vec, in_perm);
    if (kernel.rhs_vec != VecName::kCount) {
        m.ScatterVector(kernel.rhs_vec, in_perm);
    }
    return m.RunMatrixKernelStandalone(matrix_kernel_index);
}

} // namespace azul
