#include "core/azul_config.h"

#include <cstdlib>
#include <sstream>

namespace azul {

std::string
AzulOptions::ToString() const
{
    std::ostringstream oss;
    oss << sim.ToString() << ", engine=" << EngineKindName(engine)
        << ", solver=" << SolverKindName(solver)
        << ", precond=" << PreconditionerKindName(precond)
        << ", mapper=" << MapperKindName(mapper)
        << (color_and_permute ? ", colored" : ", uncolored")
        << (graph.use_trees ? ", trees" : ", p2p");
    if (!mapping_cache_dir.empty()) {
        oss << ", cache=" << mapping_cache_dir;
    }
    if (warm_start) {
        oss << ", warm-start(drift<=" << drift_traffic_threshold
            << ")";
    }
    return oss.str();
}

void
ApplyEnvOverrides(AzulOptions& opts)
{
    // Host parallelism: one knob drives both the simulation engine
    // and the parallel partitioner, exactly as the bench --threads
    // flag does.
    const std::int32_t threads =
        SimThreadsFromEnv(opts.sim.sim_threads);
    opts.sim.sim_threads = threads;
    opts.azul_mapper.partitioner.threads = threads;

    // Execution engine: "cycle" or "functional"; anything else is
    // ignored (the default stays).
    if (const char* engine_env = std::getenv("AZUL_ENGINE")) {
        ParseEngineKind(engine_env, opts.engine);
    }

    if (opts.mapping_cache_dir.empty()) {
        if (const char* dir = std::getenv("AZUL_MAPPING_CACHE")) {
            opts.mapping_cache_dir = dir;
        }
    }

    // Warm start: explicit on/off values only; anything else leaves
    // the field untouched (same ignore-invalid policy as AZUL_ENGINE).
    if (const char* warm_env = std::getenv("AZUL_WARM_START")) {
        const std::string v(warm_env);
        if (v == "1" || v == "true" || v == "on") {
            opts.warm_start = true;
        } else if (v == "0" || v == "false" || v == "off") {
            opts.warm_start = false;
        }
    }

    // SIMD elementwise kernels: results are bit-identical either way
    // (util/simd.h), so this only trades host speed for debuggability.
    opts.sim.simd = SimdFromEnv(opts.sim.simd);

    // Malformed AZUL_FAULTS specs are rejected atomically inside.
    ApplyFaultEnv(opts.sim);
}

std::uint64_t
StressSeedFromEnv(std::uint64_t fallback)
{
    const char* env = std::getenv("AZUL_STRESS_SEED");
    if (env == nullptr || *env == '\0') {
        return fallback;
    }
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 0);
    if (end == env || *end != '\0') {
        return fallback;
    }
    return static_cast<std::uint64_t>(v);
}

} // namespace azul
