#include "core/azul_config.h"

#include <sstream>

namespace azul {

std::string
AzulOptions::ToString() const
{
    std::ostringstream oss;
    oss << sim.ToString() << ", precond="
        << PreconditionerKindName(precond)
        << ", mapper=" << MapperKindName(mapper)
        << (color_and_permute ? ", colored" : ", uncolored")
        << (graph.use_trees ? ", trees" : ", p2p");
    if (!mapping_cache_dir.empty()) {
        oss << ", cache=" << mapping_cache_dir;
    }
    return oss.str();
}

} // namespace azul
