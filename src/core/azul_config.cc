#include "core/azul_config.h"

#include <cstdlib>
#include <sstream>

namespace azul {

Status
SolverSpec::Validate() const
{
    std::ostringstream oss;
    if (tol < 0.0) {
        oss << "spec.tol must be >= 0, got " << tol;
        return InvalidArgument(oss.str());
    }
    if (max_iters < 0) {
        oss << "spec.max_iters must be >= 0, got " << max_iters;
        return InvalidArgument(oss.str());
    }
    if (method == SolverKind::kJacobi) {
        if (precond != PreconditionerKind::kIdentity) {
            oss << "spec.method=jacobi is its own stationary method "
                   "and requires spec.precond=none, got "
                << PreconditionerKindName(precond);
            return InvalidArgument(oss.str());
        }
        if (!(jacobi_omega > 0.0 && jacobi_omega <= 1.0)) {
            oss << "spec.jacobi_omega must lie in (0, 1], got "
                << jacobi_omega;
            return InvalidArgument(oss.str());
        }
    }
    if (method == SolverKind::kGmres && restart < 1) {
        oss << "spec.restart must be >= 1 for gmres, got " << restart;
        return InvalidArgument(oss.str());
    }
    if (precond == PreconditionerKind::kSsor &&
        !(ssor_omega > 0.0 && ssor_omega < 2.0)) {
        oss << "spec.ssor_omega must lie in (0, 2), got "
            << ssor_omega;
        return InvalidArgument(oss.str());
    }
    return OkStatus();
}

std::string
SolverSpec::ToString() const
{
    std::ostringstream oss;
    oss << "method=" << SolverKindName(method)
        << ", precond=" << PreconditionerKindName(precond)
        << ", precision=" << PrecisionModeName(precision)
        << ", tol=" << tol << ", max_iters=" << max_iters;
    if (method == SolverKind::kGmres) {
        oss << ", restart=" << restart;
    }
    if (method == SolverKind::kJacobi) {
        oss << ", jacobi_omega=" << jacobi_omega;
    }
    if (precond == PreconditionerKind::kSsor) {
        oss << ", ssor_omega=" << ssor_omega;
    }
    return oss.str();
}

StatusOr<SolverSpec>
AzulOptions::ResolvedSpec() const
{
    const SolverSpec spec_defaults;
    const AzulOptions flat_defaults;
    SolverSpec merged = spec;
    std::ostringstream conflict;

    // One merge rule per deprecated flat alias: a flat field changed
    // from its default is adopted when the spec field is still at its
    // default; both changed to different values is a conflict.
    const auto merge = [&](auto& out, const auto& spec_value,
                           const auto& spec_default,
                           const auto& flat_value,
                           const auto& flat_default,
                           const char* flat_name,
                           const char* spec_name, auto&& print) {
        if (flat_value == flat_default) {
            return true; // flat untouched; spec (or default) wins
        }
        if (spec_value == spec_default || spec_value == flat_value) {
            out = flat_value;
            return true;
        }
        conflict << "deprecated flat field '" << flat_name
                 << "' conflicts with spec." << spec_name << " ("
                 << print(flat_value) << " vs " << print(spec_value)
                 << "); set only spec." << spec_name;
        return false;
    };
    const auto raw = [](const auto& v) { return v; };

    if (!merge(merged.method, spec.method, spec_defaults.method,
               solver, flat_defaults.solver, "solver", "method",
               [](SolverKind k) { return SolverKindName(k); }) ||
        !merge(merged.jacobi_omega, spec.jacobi_omega,
               spec_defaults.jacobi_omega, jacobi_omega,
               flat_defaults.jacobi_omega, "jacobi_omega",
               "jacobi_omega", raw) ||
        !merge(merged.precond, spec.precond, spec_defaults.precond,
               precond, flat_defaults.precond, "precond", "precond",
               [](PreconditionerKind k) {
                   return PreconditionerKindName(k);
               }) ||
        !merge(merged.ssor_omega, spec.ssor_omega,
               spec_defaults.ssor_omega, ssor_omega,
               flat_defaults.ssor_omega, "ssor_omega", "ssor_omega",
               raw) ||
        !merge(merged.tol, spec.tol, spec_defaults.tol, tol,
               flat_defaults.tol, "tol", "tol", raw) ||
        !merge(merged.max_iters, spec.max_iters,
               spec_defaults.max_iters, max_iters,
               flat_defaults.max_iters, "max_iters", "max_iters",
               raw)) {
        return InvalidArgument(conflict.str());
    }
    return merged;
}

std::string
AzulOptions::ToString() const
{
    // Print the merged solver spec so the summary reflects what Create
    // would actually run; an unresolved conflict falls back to the
    // nested spec (Create will reject it with the full message).
    const StatusOr<SolverSpec> resolved = ResolvedSpec();
    const SolverSpec& s = resolved.ok() ? *resolved : spec;
    std::ostringstream oss;
    oss << sim.ToString() << ", engine=" << EngineKindName(engine)
        << ", solver_spec{" << s.ToString() << "}"
        << ", mapper=" << MapperKindName(mapper)
        << (color_and_permute ? ", colored" : ", uncolored")
        << (graph.use_trees ? ", trees" : ", p2p");
    if (!mapping_cache_dir.empty()) {
        oss << ", cache=" << mapping_cache_dir;
    }
    if (warm_start) {
        oss << ", warm-start(drift<=" << drift_traffic_threshold
            << ")";
    }
    return oss.str();
}

void
ApplyEnvOverrides(AzulOptions& opts)
{
    // Host parallelism: one knob drives both the simulation engine
    // and the parallel partitioner, exactly as the bench --threads
    // flag does.
    const std::int32_t threads =
        SimThreadsFromEnv(opts.sim.sim_threads);
    opts.sim.sim_threads = threads;
    opts.azul_mapper.partitioner.threads = threads;

    // Execution engine: "cycle" or "functional"; anything else is
    // ignored (the default stays).
    if (const char* engine_env = std::getenv("AZUL_ENGINE")) {
        ParseEngineKind(engine_env, opts.engine);
    }

    // Solver spec overrides: same ignore-invalid policy — an
    // unrecognized name leaves the spec field at its default.
    if (const char* solver_env = std::getenv("AZUL_SOLVER")) {
        ParseSolverKind(solver_env, opts.spec.method);
    }
    if (const char* precond_env = std::getenv("AZUL_PRECOND")) {
        ParsePreconditionerKind(precond_env, opts.spec.precond);
    }
    if (const char* precision_env = std::getenv("AZUL_PRECISION")) {
        ParsePrecisionMode(precision_env, opts.spec.precision);
    }

    if (opts.mapping_cache_dir.empty()) {
        if (const char* dir = std::getenv("AZUL_MAPPING_CACHE")) {
            opts.mapping_cache_dir = dir;
        }
    }

    // Warm start: explicit on/off values only; anything else leaves
    // the field untouched (same ignore-invalid policy as AZUL_ENGINE).
    if (const char* warm_env = std::getenv("AZUL_WARM_START")) {
        const std::string v(warm_env);
        if (v == "1" || v == "true" || v == "on") {
            opts.warm_start = true;
        } else if (v == "0" || v == "false" || v == "off") {
            opts.warm_start = false;
        }
    }

    // SIMD elementwise kernels: results are bit-identical either way
    // (util/simd.h), so this only trades host speed for debuggability.
    opts.sim.simd = SimdFromEnv(opts.sim.simd);

    // Malformed AZUL_FAULTS specs are rejected atomically inside.
    ApplyFaultEnv(opts.sim);
}

std::uint64_t
StressSeedFromEnv(std::uint64_t fallback)
{
    const char* env = std::getenv("AZUL_STRESS_SEED");
    if (env == nullptr || *env == '\0') {
        return fallback;
    }
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 0);
    if (end == env || *end != '\0') {
        return fallback;
    }
    return static_cast<std::uint64_t>(v);
}

} // namespace azul
