/**
 * @file
 * AzulSystem: the library's main entry point. It owns the full
 * accelerator pipeline of the paper:
 *
 *   matrix -> coloring/permutation (Sec II-A)
 *          -> preconditioner factorization (IC(0) etc.)
 *          -> data mapping (Sec IV)
 *          -> dataflow compilation (kernels, trees; Sec IV-A/D)
 *          -> cycle-level simulation (Sec V / VI-A)
 *
 * A single instance amortizes the expensive preprocessing across many
 * solves — exactly the physical-simulation use case of Sec II-C where
 * one mapping serves millions of timesteps. The serving layer
 * (src/service/azul_service.h) multiplexes many instances.
 *
 * Construction is fallible: `AzulSystem::Create` validates the user's
 * matrix/configuration and returns a typed Status instead of
 * throwing (docs/API.md). The deprecated throwing constructor was
 * removed; Create is the only way to build a system.
 *
 * The solve runs on the execution engine selected by
 * AzulOptions::engine (sim/execution_engine.h): the cycle-accurate
 * Machine (default, ground truth for figures) or the timing-free
 * FunctionalEngine with bit-identical numerics.
 */
#ifndef AZUL_CORE_AZUL_SYSTEM_H_
#define AZUL_CORE_AZUL_SYSTEM_H_

#include <memory>

#include "core/azul_config.h"
#include "core/solve_report.h"
#include "dataflow/program.h"
#include "sim/execution_engine.h"
#include "sim/machine.h"
#include "sparse/permute.h"
#include "util/status.h"

namespace azul {

/** A configured Azul accelerator instance for one sparsity pattern. */
class AzulSystem {
  public:
    /**
     * Builds the system: colors/permutes the matrix, factors the
     * preconditioner, maps data, compiles the program, and
     * instantiates the execution engine. Invalid user input — a
     * non-square or empty matrix, a non-positive tile grid, a
     * precomputed mapping for a different machine size, a solver /
     * preconditioner combination the compiler rejects,
     * engine=functional combined with fault injection, or (with
     * options.strict_sram_fit) a program that overflows the
     * scratchpads — returns a non-OK Status instead of aborting.
     */
    static StatusOr<AzulSystem> Create(CsrMatrix a,
                                       AzulOptions options);

    AzulSystem(AzulSystem&&) = default;
    AzulSystem& operator=(AzulSystem&&) = default;

    /** Solves A x = b on the simulated accelerator. The right-hand
     *  side and returned x are in the caller's original row order. */
    SolveReport Solve(const Vector& b);

    /**
     * Solve under a resource budget (serving layer: per-request cycle
     * budgets). Identical to Solve(b) until the budget expires;
     * truncated runs are labeled FailureKind::kBudgetExhausted.
     */
    SolveReport Solve(const Vector& b, const RunBudget& budget);

    /**
     * Updates A's numeric values in place (same sparsity pattern) and
     * refactors the preconditioner — the cheap per-timestep path of
     * Sec II-C. Mapping and tree structure are reused. Returns
     * INVALID_ARGUMENT (leaving the system untouched) when a_new has
     * a different shape or sparsity pattern.
     */
    Status UpdateValues(const CsrMatrix& a_new);

    /**
     * Runs one standalone kernel with the machine's current vector
     * state (benches: per-kernel cycles and traffic). Cycle engine
     * only — per-kernel timing is exactly what the functional engine
     * does not model (aborts under engine=functional).
     */
    SimStats RunKernelOnce(int matrix_kernel_index, const Vector& input);

    // ---- Introspection ----------------------------------------------------
    const AzulOptions& options() const { return options_; }
    const CsrMatrix& matrix() const { return a_; }
    const CsrMatrix* factor() const
    {
        return l_.nnz() > 0 ? &l_ : nullptr;
    }
    const Permutation& permutation() const { return perm_; }
    const DataMapping& mapping() const { return mapping_; }
    const SolverProgram& program() const { return *program_; }
    /** The execution engine behind Solve (kind per options().engine). */
    ExecutionEngine& engine() { return *engine_; }
    /** The cycle-accurate machine; requires options().engine ==
     *  EngineKind::kCycle (aborts otherwise). Use engine() for
     *  engine-agnostic access. */
    Machine& machine()
    {
        AZUL_CHECK_MSG(engine_->kind() == EngineKind::kCycle,
                       "machine() requires engine=cycle");
        return static_cast<Machine&>(*engine_);
    }
    double mapping_seconds() const { return mapping_seconds_; }
    double compile_seconds() const { return compile_seconds_; }
    /** Mapping-cache lookups during construction (0/0 if disabled or
     *  a precomputed mapping was supplied). */
    int mapping_cache_hits() const { return mapping_cache_hits_; }
    int mapping_cache_misses() const { return mapping_cache_misses_; }
    SramUsage sram_usage() const;

  private:
    AzulSystem() = default; //!< Create fills the members in

    /** The construction pipeline behind Create (may throw AzulError
     *  from internal validation; Create converts to Status). */
    void Init(CsrMatrix a);

    AzulOptions options_;
    CsrMatrix a_;        //!< permuted system matrix
    CsrMatrix l_;        //!< lower factor (empty if not factored)
    Permutation perm_;   //!< coloring permutation (identity if off)
    DataMapping mapping_;
    /** Heap-allocated so the engine's pointer to it survives moves
     *  of the AzulSystem (StatusOr/containers move freely). */
    std::unique_ptr<SolverProgram> program_;
    std::unique_ptr<ExecutionEngine> engine_;
    double mapping_seconds_ = 0.0;
    double compile_seconds_ = 0.0;
    int mapping_cache_hits_ = 0;
    int mapping_cache_misses_ = 0;
};

} // namespace azul

#endif // AZUL_CORE_AZUL_SYSTEM_H_
