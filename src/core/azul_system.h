/**
 * @file
 * AzulSystem: the library's main entry point. It owns the full
 * accelerator pipeline of the paper:
 *
 *   matrix -> coloring/permutation (Sec II-A)
 *          -> preconditioner factorization (IC(0) etc.)
 *          -> data mapping (Sec IV)
 *          -> dataflow compilation (kernels, trees; Sec IV-A/D)
 *          -> cycle-level simulation (Sec V / VI-A)
 *
 * A single instance amortizes the expensive preprocessing across many
 * solves — exactly the physical-simulation use case of Sec II-C where
 * one mapping serves millions of timesteps. The serving layer
 * (src/service/azul_service.h) multiplexes many instances.
 *
 * Construction is fallible: `AzulSystem::Create` validates the user's
 * matrix/configuration and returns a typed Status instead of
 * throwing (docs/API.md). The deprecated throwing constructor was
 * removed; Create is the only way to build a system.
 *
 * The solve runs on the execution engine selected by
 * AzulOptions::engine (sim/execution_engine.h): the cycle-accurate
 * Machine (default, ground truth for figures) or the timing-free
 * FunctionalEngine with bit-identical numerics.
 */
#ifndef AZUL_CORE_AZUL_SYSTEM_H_
#define AZUL_CORE_AZUL_SYSTEM_H_

#include <memory>

#include "core/azul_config.h"
#include "core/solve_report.h"
#include "dataflow/program.h"
#include "sim/execution_engine.h"
#include "sim/machine.h"
#include "sparse/permute.h"
#include "util/status.h"

namespace azul {

/** A configured Azul accelerator instance for one sparsity pattern. */
class AzulSystem {
  public:
    /**
     * Builds the system: colors/permutes the matrix, factors the
     * preconditioner, maps data, compiles the program, and
     * instantiates the execution engine. Invalid user input — a
     * non-square or empty matrix, a non-positive tile grid, a
     * precomputed mapping for a different machine size, a solver /
     * preconditioner combination the compiler rejects,
     * engine=functional combined with fault injection, or (with
     * options.strict_sram_fit) a program that overflows the
     * scratchpads — returns a non-OK Status instead of aborting.
     */
    static StatusOr<AzulSystem> Create(CsrMatrix a,
                                       AzulOptions options);

    AzulSystem(AzulSystem&&) = default;
    AzulSystem& operator=(AzulSystem&&) = default;

    /**
     * Solves A x = b on the simulated accelerator. The right-hand
     * side and returned x are in the caller's original row order.
     * With options().warm_start, every solve after the first starts
     * from the previous solution (or options().x0 on the very first)
     * and report.warm_started records which path ran — see
     * docs/TIMESTEPPING.md.
     */
    SolveReport Solve(const Vector& b);

    /**
     * Solve under a resource budget (serving layer: per-request cycle
     * budgets). Identical to Solve(b) until the budget expires;
     * truncated runs are labeled FailureKind::kBudgetExhausted.
     */
    SolveReport Solve(const Vector& b, const RunBudget& budget);

    /**
     * Solve with an explicit initial guess in the caller's original
     * row order (empty = cold start), overriding the session-resident
     * warm state for this one solve. Aborts if x0 is non-empty with
     * the wrong length — validate at the API boundary (the service
     * returns kInvalidArgument).
     */
    SolveReport Solve(const Vector& b, const RunBudget& budget,
                      const Vector& x0);

    /**
     * Updates A's numeric values in place (same sparsity pattern) and
     * refactors the preconditioner — the cheap per-timestep path of
     * Sec II-C. Mapping and tree structure are reused, and the warm
     * state (last solution) stays resident. Returns INVALID_ARGUMENT
     * (leaving the system untouched) when a_new has a different shape
     * or sparsity pattern.
     */
    Status UpdateValues(const CsrMatrix& a_new);

    /**
     * Replaces A wholesale, tolerating sparsity-pattern drift — the
     * expensive end of the time-stepping spectrum (adaptive meshing,
     * contact changes). Same dimensions required. When the pattern is
     * unchanged this is exactly UpdateValues; otherwise the system
     * re-colors, inherits the old mapping onto the new structure, and
     * keeps it if its estimated traffic stays within
     * options().drift_traffic_threshold of the nnz-scaled baseline —
     * else it repartitions from scratch (mapping_reuses() /
     * repartitions() count the outcomes). The warm state survives
     * either way: it lives in original row order, independent of the
     * permutation and mapping.
     */
    Status UpdateMatrix(const CsrMatrix& a_new);

    // ---- Warm state (docs/TIMESTEPPING.md) ---------------------------------
    /** True once a solve completed (or warm state was seeded) and the
     *  next warm_start solve has an x0 to start from. */
    bool has_warm_state() const { return !last_x_.empty(); }

    /** Last gathered solution in original row order (empty if none). */
    const Vector& last_solution() const { return last_x_; }

    /**
     * Seeds the warm state with an externally supplied solution (the
     * persistence layer's restore path). Returns kInvalidArgument on
     * a length mismatch.
     */
    Status SeedWarmState(Vector x);

    /** Drops the warm state; the next solve is cold. */
    void ClearWarmState() { last_x_.clear(); }

    /** FNV-1a hash of the caller-order sparsity structure — the drift
     *  detector persisted with a session's state. */
    std::uint64_t structure_hash() const { return structure_hash_; }

    /** Solves that started from a warm / cold prologue. */
    std::int64_t warm_solves() const { return warm_solves_; }
    std::int64_t cold_solves() const { return cold_solves_; }
    /** UpdateMatrix pattern-drift outcomes: inherited-mapping reuses
     *  vs. full repartitions. */
    std::int64_t mapping_reuses() const { return mapping_reuses_; }
    std::int64_t repartitions() const { return repartitions_; }

    /**
     * Runs one standalone kernel with the machine's current vector
     * state (benches: per-kernel cycles and traffic). Cycle engine
     * only — per-kernel timing is exactly what the functional engine
     * does not model (aborts under engine=functional).
     */
    SimStats RunKernelOnce(int matrix_kernel_index, const Vector& input);

    // ---- Introspection ----------------------------------------------------
    const AzulOptions& options() const { return options_; }
    const CsrMatrix& matrix() const { return a_; }
    const CsrMatrix* factor() const
    {
        return l_.nnz() > 0 ? &l_ : nullptr;
    }
    const Permutation& permutation() const { return perm_; }
    const DataMapping& mapping() const { return mapping_; }
    const SolverProgram& program() const { return *program_; }
    /** The execution engine behind Solve (kind per options().engine). */
    ExecutionEngine& engine() { return *engine_; }
    /** The cycle-accurate machine; requires options().engine ==
     *  EngineKind::kCycle (aborts otherwise). Use engine() for
     *  engine-agnostic access. */
    Machine& machine()
    {
        AZUL_CHECK_MSG(engine_->kind() == EngineKind::kCycle,
                       "machine() requires engine=cycle");
        return static_cast<Machine&>(*engine_);
    }
    double mapping_seconds() const { return mapping_seconds_; }
    double compile_seconds() const { return compile_seconds_; }
    /** Mapping-cache lookups during construction (0/0 if disabled or
     *  a precomputed mapping was supplied). */
    int mapping_cache_hits() const { return mapping_cache_hits_; }
    int mapping_cache_misses() const { return mapping_cache_misses_; }
    SramUsage sram_usage() const;

  private:
    AzulSystem() = default; //!< Create fills the members in

    /** The construction pipeline behind Create (may throw AzulError
     *  from internal validation; Create converts to Status). */
    void Init(CsrMatrix a);

    /** Refactors the preconditioner and recompiles the program +
     *  engine for the current a_ / mapping_ (UpdateValues and
     *  UpdateMatrix share it; may throw AzulError). */
    void RecompileForCurrentMatrix();

    AzulOptions options_;
    CsrMatrix a_;        //!< permuted system matrix
    CsrMatrix l_;        //!< lower factor (empty if not factored)
    Permutation perm_;   //!< coloring permutation (identity if off)
    DataMapping mapping_;
    /** Heap-allocated so the engine's pointer to it survives moves
     *  of the AzulSystem (StatusOr/containers move freely). */
    std::unique_ptr<SolverProgram> program_;
    std::unique_ptr<ExecutionEngine> engine_;
    double mapping_seconds_ = 0.0;
    double compile_seconds_ = 0.0;
    int mapping_cache_hits_ = 0;
    int mapping_cache_misses_ = 0;
    // ---- Warm-start / drift state (docs/TIMESTEPPING.md) -------------------
    Vector last_x_; //!< last solution, original row order
    /** options_.x0 still owed to the first solve (consumed even when
     *  warm_start is off: an explicit x0 is never silently ignored). */
    bool x0_pending_ = false;
    std::uint64_t structure_hash_ = 0;
    /** EstimateTraffic of the current mapping and the nnz it was
     *  computed for — the drift baseline UpdateMatrix scales. */
    double baseline_traffic_ = 0.0;
    Index baseline_nnz_ = 0;
    std::int64_t warm_solves_ = 0;
    std::int64_t cold_solves_ = 0;
    std::int64_t mapping_reuses_ = 0;
    std::int64_t repartitions_ = 0;
};

} // namespace azul

#endif // AZUL_CORE_AZUL_SYSTEM_H_
