#include "core/solve_report.h"

#include <cmath>
#include <sstream>

namespace azul {

namespace {

// A breakdown run can carry a NaN/Inf residual; bare "nan"/"inf"
// tokens are not valid JSON, so emit null for non-finite values.
std::string
JsonNumber(double v)
{
    if (!std::isfinite(v)) {
        return "null";
    }
    std::ostringstream oss;
    oss.precision(12);
    oss << v;
    return oss.str();
}

} // namespace

std::string
SolveReport::Summary() const
{
    std::ostringstream oss;
    oss.precision(4);
    oss << (run.converged ? "converged" : "NOT converged") << " in "
        << run.iterations << " iters, ||r||=" << run.residual_norm
        << ", " << run.stats.cycles << " cycles, " << gflops
        << " GFLOP/s (" << peak_fraction * 100.0 << "% of peak), "
        << power.total() << " W";
    if (run.failure != FailureKind::kNone) {
        oss << " [" << FailureKindName(run.failure) << "]";
    }
    if (run.recoveries > 0) {
        oss << " (" << run.recoveries << " recoveries)";
    }
    if (warm_started) {
        oss << " [warm]";
    }
    return oss.str();
}

std::string
SolveReport::ToJson() const
{
    std::ostringstream oss;
    oss.precision(12);
    oss << "{";
    oss << "\"converged\":" << (run.converged ? "true" : "false");
    oss << ",\"failure\":\"" << FailureKindName(run.failure) << "\"";
    oss << ",\"engine\":\"" << EngineKindName(engine) << "\"";
    oss << ",\"solver_spec\":{\"method\":\""
        << SolverKindName(spec.method) << "\",\"precond\":\""
        << PreconditionerKindName(spec.precond)
        << "\",\"precision\":\"" << PrecisionModeName(spec.precision)
        << "\",\"tol\":" << JsonNumber(spec.tol)
        << ",\"max_iters\":" << spec.max_iters
        << ",\"restart\":" << spec.restart << "}";
    oss << ",\"precision\":\"" << PrecisionModeName(spec.precision)
        << "\"";
    oss << ",\"iterations\":" << run.iterations;
    oss << ",\"recoveries\":" << run.recoveries;
    oss << ",\"residual_norm\":" << JsonNumber(run.residual_norm);
    oss << ",\"cycles\":" << run.stats.cycles;
    oss << ",\"flops\":" << run.flops;
    oss << ",\"gflops\":" << gflops;
    oss << ",\"peak_fraction\":" << peak_fraction;
    oss << ",\"solve_seconds\":" << solve_seconds;
    oss << ",\"mapping_seconds\":" << mapping_seconds;
    oss << ",\"compile_seconds\":" << compile_seconds;
    oss << ",\"mapping_cache_hits\":" << mapping_cache_hits;
    oss << ",\"mapping_cache_misses\":" << mapping_cache_misses;
    oss << ",\"warm_started\":" << (warm_started ? "true" : "false");
    oss << ",\"mapping_reuses\":" << mapping_reuses;
    oss << ",\"repartitions\":" << repartitions;
    oss << ",\"messages\":" << run.stats.messages;
    oss << ",\"link_activations\":" << run.stats.link_activations;
    oss << ",\"spilled_messages\":" << run.stats.spilled_messages;
    oss << ",\"faults\":{\"injected\":" << run.stats.faults_injected
        << ",\"sram\":" << run.stats.faults_sram
        << ",\"noc_dropped\":" << run.stats.faults_noc_dropped
        << ",\"noc_corrupted\":" << run.stats.faults_noc_corrupted
        << ",\"pe_stalls\":" << run.stats.faults_pe_stalls
        << ",\"detected\":" << run.stats.faults_detected
        << ",\"checkpoints\":" << run.stats.checkpoints
        << ",\"rollbacks\":" << run.stats.rollbacks << "}";
    oss << ",\"ops\":{\"fmac\":" << run.stats.ops.fmac
        << ",\"add\":" << run.stats.ops.add
        << ",\"mul\":" << run.stats.ops.mul
        << ",\"send\":" << run.stats.ops.send << "}";
    oss << ",\"stall_cycles\":" << run.stats.stall_cycles;
    oss << ",\"class_cycles\":{\"spmv\":"
        << run.stats.class_cycles[static_cast<std::size_t>(
               KernelClass::kSpMV)]
        << ",\"sptrsv_fwd\":"
        << run.stats.class_cycles[static_cast<std::size_t>(
               KernelClass::kSpTRSVForward)]
        << ",\"sptrsv_bwd\":"
        << run.stats.class_cycles[static_cast<std::size_t>(
               KernelClass::kSpTRSVBackward)]
        << ",\"vector\":"
        << run.stats.class_cycles[static_cast<std::size_t>(
               KernelClass::kVectorOp)]
        << "}";
    oss << ",\"power_w\":{\"sram\":" << power.sram_w
        << ",\"compute\":" << power.compute_w
        << ",\"noc\":" << power.noc_w
        << ",\"leakage\":" << power.leakage_w
        << ",\"total\":" << power.total() << "}";
    oss << ",\"sram\":{\"max_data_bytes\":" << sram.max_data_bytes
        << ",\"max_accum_bytes\":" << sram.max_accum_bytes
        << ",\"fits\":" << (sram.fits ? "true" : "false") << "}";
    oss << "}";
    return oss.str();
}

} // namespace azul
