/**
 * @file
 * Result of an accelerated solve: solver outcome, simulated timing,
 * traffic, power, and preprocessing costs — everything the evaluation
 * figures consume.
 */
#ifndef AZUL_CORE_SOLVE_REPORT_H_
#define AZUL_CORE_SOLVE_REPORT_H_

#include <string>

#include "core/azul_config.h"
#include "energy/energy_model.h"
#include "sim/machine.h"
#include "sim/sram.h"

namespace azul {

/** Full report of one accelerated solve. */
struct SolveReport {
    /** Solver outcome + cumulative simulation statistics. */
    SolverRunResult run;
    /** The merged solver spec the system actually ran (method,
     *  preconditioner, precision, convergence controls). */
    SolverSpec spec;
    /**
     * Execution engine that produced the run. Timing-derived fields
     * (cycles, gflops, solve_seconds, power) are only meaningful under
     * kCycle; under kFunctional, `cycles` counts solver iterations
     * (docs/API.md, "Budgets and engines").
     */
    EngineKind engine = EngineKind::kCycle;
    /** Delivered throughput over the whole solve. */
    double gflops = 0.0;
    /** Fraction of the machine's peak FP throughput. */
    double peak_fraction = 0.0;
    /** Wall-clock seconds spent in the mapping algorithm. */
    double mapping_seconds = 0.0;
    /** Wall-clock seconds spent compiling kernels. */
    double compile_seconds = 0.0;
    /** Persistent mapping-cache lookups during system construction
     *  (both 0 when the cache is disabled). */
    int mapping_cache_hits = 0;
    int mapping_cache_misses = 0;
    /** Simulated solve time in seconds at the configured clock. */
    double solve_seconds = 0.0;
    /** Scratchpad usage of the compiled program. */
    SramUsage sram;
    /** Average power over the solve. */
    PowerBreakdown power;
    /** True when the solve started from an initial guess via the warm
     *  prologue instead of x = 0 (docs/TIMESTEPPING.md). */
    bool warm_started = false;
    /** Cumulative UpdateMatrix pattern-drift outcomes on the system
     *  that produced this report: inherited-mapping reuses vs. full
     *  repartitions. */
    std::int64_t mapping_reuses = 0;
    std::int64_t repartitions = 0;

    /** One-line human-readable summary. */
    std::string Summary() const;

    /**
     * Flat JSON object with the report's scalar fields — convenient
     * for scripting sweeps over matrices/configurations.
     */
    std::string ToJson() const;
};

} // namespace azul

#endif // AZUL_CORE_SOLVE_REPORT_H_
