#include "dataflow/vector_ops_graph.h"

#include <sstream>

namespace azul {

std::string
VectorKernel::ToString() const
{
    std::ostringstream oss;
    switch (op) {
      case VecOpKind::kAxpy:
        oss << VecNameStr(dst) << " += " << (scale_sign < 0 ? "-" : "")
            << "s*" << VecNameStr(src_a);
        break;
      case VecOpKind::kXpby:
        oss << VecNameStr(dst) << " = " << VecNameStr(src_a) << " + s*"
            << VecNameStr(dst);
        break;
      case VecOpKind::kCopy:
        oss << VecNameStr(dst) << " = " << VecNameStr(src_a);
        break;
      case VecOpKind::kSub:
        oss << VecNameStr(dst) << " = " << VecNameStr(src_a) << " - "
            << VecNameStr(src_b);
        break;
      case VecOpKind::kDiagScale:
        oss << VecNameStr(dst) << " = D^-1 " << VecNameStr(src_a);
        break;
      case VecOpKind::kDotReduce:
        oss << "dot(" << VecNameStr(src_a) << "," << VecNameStr(src_b)
            << ")";
        break;
    }
    return oss.str();
}

VectorKernel
MakeAxpy(VecName dst, ScalarReg reg, VecName a, double sign)
{
    VectorKernel k;
    k.op = VecOpKind::kAxpy;
    k.dst = dst;
    k.src_a = a;
    k.scale_reg = reg;
    k.scale_sign = sign;
    return k;
}

VectorKernel
MakeXpby(VecName dst, VecName a, ScalarReg reg)
{
    VectorKernel k;
    k.op = VecOpKind::kXpby;
    k.dst = dst;
    k.src_a = a;
    k.scale_reg = reg;
    return k;
}

VectorKernel
MakeAxpyConst(VecName dst, double s, VecName a)
{
    VectorKernel k;
    k.op = VecOpKind::kAxpy;
    k.dst = dst;
    k.src_a = a;
    k.use_const_scale = true;
    k.const_scale = s;
    return k;
}

VectorKernel
MakeSub(VecName dst, VecName a, VecName b)
{
    VectorKernel k;
    k.op = VecOpKind::kSub;
    k.dst = dst;
    k.src_a = a;
    k.src_b = b;
    return k;
}

VectorKernel
MakeCopy(VecName dst, VecName a)
{
    VectorKernel k;
    k.op = VecOpKind::kCopy;
    k.dst = dst;
    k.src_a = a;
    return k;
}

VectorKernel
MakeDiagScale(VecName dst, VecName a)
{
    VectorKernel k;
    k.op = VecOpKind::kDiagScale;
    k.dst = dst;
    k.src_a = a;
    return k;
}

VectorKernel
MakeDot(ScalarReg reg, VecName a, VecName b)
{
    VectorKernel k;
    k.op = VecOpKind::kDotReduce;
    k.src_a = a;
    k.src_b = b;
    k.dot_out = reg;
    return k;
}

} // namespace azul
