#include "dataflow/vector_ops_graph.h"

#include <sstream>

namespace azul {

namespace {

/** Operand name: a bank slot ("v[3]") or the architectural vector. */
std::string
OperandStr(VecName name, std::int32_t bank)
{
    if (bank >= 0) {
        return "v[" + std::to_string(bank) + "]";
    }
    return VecNameStr(name);
}

} // namespace

std::string
VectorKernel::ToString() const
{
    std::ostringstream oss;
    const std::string d = OperandStr(dst, dst_bank);
    const std::string a = OperandStr(src_a, src_a_bank);
    const std::string b = OperandStr(src_b, src_b_bank);
    switch (op) {
      case VecOpKind::kAxpy:
        oss << d << " += " << (scale_sign < 0 ? "-" : "") << "s*" << a;
        break;
      case VecOpKind::kXpby:
        oss << d << " = " << a << " + s*" << d;
        break;
      case VecOpKind::kCopy:
        oss << d << " = " << a;
        break;
      case VecOpKind::kSub:
        oss << d << " = " << a << " - " << b;
        break;
      case VecOpKind::kDiagScale:
        oss << d << " = D^-1 " << a;
        break;
      case VecOpKind::kScale:
        oss << d << " = " << (scale_invert ? "1/s * " : "s * ") << a;
        break;
      case VecOpKind::kDotReduce:
        oss << (post_sqrt ? "norm2(" : "dot(") << a;
        if (!post_sqrt) {
            oss << "," << b;
        }
        oss << ")";
        break;
    }
    return oss.str();
}

VectorKernel
MakeAxpy(VecName dst, ScalarReg reg, VecName a, double sign)
{
    VectorKernel k;
    k.op = VecOpKind::kAxpy;
    k.dst = dst;
    k.src_a = a;
    k.scale_reg = reg;
    k.scale_sign = sign;
    return k;
}

VectorKernel
MakeXpby(VecName dst, VecName a, ScalarReg reg)
{
    VectorKernel k;
    k.op = VecOpKind::kXpby;
    k.dst = dst;
    k.src_a = a;
    k.scale_reg = reg;
    return k;
}

VectorKernel
MakeAxpyConst(VecName dst, double s, VecName a)
{
    VectorKernel k;
    k.op = VecOpKind::kAxpy;
    k.dst = dst;
    k.src_a = a;
    k.use_const_scale = true;
    k.const_scale = s;
    return k;
}

VectorKernel
MakeSub(VecName dst, VecName a, VecName b)
{
    VectorKernel k;
    k.op = VecOpKind::kSub;
    k.dst = dst;
    k.src_a = a;
    k.src_b = b;
    return k;
}

VectorKernel
MakeCopy(VecName dst, VecName a)
{
    VectorKernel k;
    k.op = VecOpKind::kCopy;
    k.dst = dst;
    k.src_a = a;
    return k;
}

VectorKernel
MakeDiagScale(VecName dst, VecName a)
{
    VectorKernel k;
    k.op = VecOpKind::kDiagScale;
    k.dst = dst;
    k.src_a = a;
    return k;
}

VectorKernel
MakeDot(ScalarReg reg, VecName a, VecName b)
{
    VectorKernel k;
    k.op = VecOpKind::kDotReduce;
    k.src_a = a;
    k.src_b = b;
    k.dot_out = reg;
    return k;
}

VectorKernel
MakeScale(VecName dst, ScalarReg reg, VecName a, bool invert)
{
    VectorKernel k;
    k.op = VecOpKind::kScale;
    k.dst = dst;
    k.src_a = a;
    k.scale_reg = reg;
    k.scale_invert = invert;
    return k;
}

} // namespace azul
