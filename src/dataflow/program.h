/**
 * @file
 * The compiled solver program IR: the full sequence of kernel phases
 * the machine executes per solver iteration (Listing 1 of the paper
 * for PCG), plus the prologue that establishes the initial residual
 * state and an explicit convergence contract.
 *
 * A SolverProgram is pure data — the engine layer (`src/sim/`)
 * interprets it without knowing which algorithm it encodes. PCG,
 * weighted Jacobi, and BiCGStab (Table II) are all built here as
 * plain programs; adding another iterative method (e.g. Chebyshev)
 * is an IR-level change only.
 */
#ifndef AZUL_DATAFLOW_PROGRAM_H_
#define AZUL_DATAFLOW_PROGRAM_H_

#include <string>
#include <vector>

#include "dataflow/sptrsv_graph.h"
#include "dataflow/task.h"
#include "dataflow/vector_ops_graph.h"
#include "mapping/mapping.h"
#include "solver/preconditioner.h"

namespace azul {

/**
 * A register-file operation computed at the scalar-tree root and
 * broadcast to all tiles (e.g. BiCGStab's beta and omega updates).
 */
struct ScalarOp {
    enum class Kind : std::uint8_t {
        kCopy,   //!< out = a
        kDiv,    //!< out = a / b
        kMulDiv, //!< out = (a / b) * (c / d)
    };
    Kind kind = Kind::kCopy;
    ScalarReg out = ScalarReg::kTmp;
    ScalarReg a = ScalarReg::kTmp;
    ScalarReg b = ScalarReg::kTmp;
    ScalarReg c = ScalarReg::kTmp;
    ScalarReg d = ScalarReg::kTmp;
};

/**
 * A host-side epilogue computed once per iteration on the scalar
 * state the machine reduced and broadcast — dense O(m^2) arithmetic
 * that would waste the fabric (the paper's Sec II-C division of
 * labor: the accelerator runs the sparse/vector kernels, the host
 * runs tiny dense solves). Both engines execute the identical serial
 * FP64 routine (`sim/host_ops.h`), so host ops preserve the
 * bit-identity contract.
 */
struct HostOp {
    enum class Kind : std::uint8_t {
        /** Givens-rotation least squares over the GMRES Hessenberg
         *  column block: reads H (column-major, column j at
         *  j*(restart+1)) and beta from the scalar bank, writes y to
         *  `y_offset` and the residual estimate |g(m)| to `out`. */
        kGmresLsq,
    };
    Kind kind = Kind::kGmresLsq;
    Index restart = 0;          //!< m, the Krylov dimension
    std::int32_t h_offset = 0;  //!< scalar-bank offset of H
    std::int32_t beta_offset = 0;
    std::int32_t y_offset = 0;
    ScalarReg out = ScalarReg::kRr;
};

/** One phase: a matrix kernel (by index), an inline vector kernel, a
 *  scalar-register operation, or a host-side epilogue. */
struct Phase {
    enum class Kind : std::uint8_t { kMatrix, kVector, kScalar, kHost };
    Kind kind = Kind::kVector;
    int matrix_kernel = -1;
    VectorKernel vec;
    ScalarOp scalar;
    HostOp host;

    static Phase
    Matrix(int index)
    {
        Phase p;
        p.kind = Kind::kMatrix;
        p.matrix_kernel = index;
        return p;
    }
    static Phase
    Vector(VectorKernel k)
    {
        Phase p;
        p.kind = Kind::kVector;
        p.vec = std::move(k);
        return p;
    }
    static Phase
    Scalar(ScalarOp op)
    {
        Phase p;
        p.kind = Kind::kScalar;
        p.scalar = op;
        return p;
    }
    static Phase
    Host(HostOp op)
    {
        Phase p;
        p.kind = Kind::kHost;
        p.host = op;
        return p;
    }
};

/**
 * The convergence contract of a program: which scalar register the
 * iteration body leaves the residual measure in, how to turn that
 * register into ||r||, and how often (if ever) to re-establish the
 * true residual before reading it. The generic run driver consults
 * only this spec — it has no built-in knowledge of PCG's kRr
 * convention.
 */
struct ConvergenceSpec {
    /** Register the iteration leaves the residual measure in. */
    ScalarReg residual_reg = ScalarReg::kRr;

    enum class Norm : std::uint8_t {
        kL2FromSquared, //!< register holds ||r||^2 (dot(r, r))
        kAbsolute,      //!< register holds ||r|| directly
    };
    Norm norm = Norm::kL2FromSquared;

    /**
     * If > 0 and the program provides `residual_recompute` phases,
     * the driver runs them every this-many iterations before reading
     * the residual register — guarding against drift between the
     * recurrence residual and the true residual b - A x on
     * long-running solves.
     */
    Index true_residual_interval = 0;
};

/** A compiled solver program with its placement context. */
struct SolverProgram {
    TorusGeometry geom;
    std::vector<TileId> vec_tile;
    std::vector<MatrixKernel> matrix_kernels;
    std::vector<Phase> prologue;  //!< run once (x = 0, r = b assumed)
    /**
     * Warm-start prologue: run once instead of `prologue` when the
     * driver is given a nonzero initial guess. Assumes the engine
     * loaded b and scattered x0 into the solution vector; computes
     * the true residual r = b - A x0 through the program's own SpMV
     * kernel and then re-establishes the recurrence state exactly as
     * `prologue` does, so warm and cold solves share every downstream
     * phase (docs/TIMESTEPPING.md).
     */
    std::vector<Phase> warm_prologue;
    std::vector<Phase> iteration; //!< run until convergence
    /** Optional phases re-establishing the true residual measure
     *  (see ConvergenceSpec::true_residual_interval). */
    std::vector<Phase> residual_recompute;
    /** How the run driver detects convergence. */
    ConvergenceSpec convergence;
    /** Vector holding the solution the driver gathers at the end. */
    VecName solution = VecName::kX;
    /** Per-index 1/diag(A) for the Jacobi kDiagScale kernel. */
    std::vector<double> jacobi_inv_diag;
    /**
     * Size of the multi-vector register bank (GMRES's Krylov basis;
     * 0 for programs that only use the named vectors). Bank vectors
     * are sharded across tiles like named vectors and count toward
     * the SRAM footprint, but are scratch within one iteration: they
     * are rebuilt from `solution` every restart, so checkpoints and
     * fault injection cover only the architectural VecName state.
     */
    Index num_bank_vectors = 0;
    /** Size of the broadcast scalar bank (Hessenberg entries + beta +
     *  y for GMRES; 0 when unused). */
    Index num_bank_scalars = 0;
    /** Nominal FLOPs per iteration, by kernel class. */
    double spmv_flops = 0.0;
    double sptrsv_flops = 0.0;
    double vector_flops = 0.0;
    /** Nominal FLOPs of the one-time prologue. */
    double prologue_flops = 0.0;
    /** Nominal FLOPs of the one-time warm-start prologue. */
    double warm_prologue_flops = 0.0;
    /** Nominal FLOPs of one residual_recompute execution. */
    double recompute_flops = 0.0;

    double
    FlopsPerIteration() const
    {
        return spmv_flops + sptrsv_flops + vector_flops;
    }
};

/** The iterative methods the program compiler knows how to build. */
enum class SolverKind : std::uint8_t {
    kPcg,      //!< preconditioned CG (Listing 1; the paper's default)
    kJacobi,   //!< weighted Jacobi (damped Richardson)
    kBiCgStab, //!< preconditioned BiCGStab (nonsymmetric systems)
    kGmres,    //!< restarted, right-preconditioned GMRES(m)
};

/** Printable solver-kind name ("pcg", "jacobi", "bicgstab",
 *  "gmres"). */
const char* SolverKindName(SolverKind kind);

/** Inverse of SolverKindName; leaves `out` untouched and returns
 *  false on an unknown name. */
bool ParseSolverKind(const std::string& text, SolverKind& out);

/** Inputs to program compilation. */
struct ProgramBuildInputs {
    const CsrMatrix* a = nullptr;
    /** Lower factor; required for trisolve-based preconditioners. */
    const CsrMatrix* l = nullptr;
    PreconditionerKind precond = PreconditionerKind::kIncompleteCholesky;
    const DataMapping* mapping = nullptr;
    TorusGeometry geom;
    GraphOptions graph;
    /** Damping weight of the kJacobi solver (ignored otherwise). */
    double jacobi_omega = 2.0 / 3.0;
    /** Krylov dimension m of the kGmres solver (ignored otherwise). */
    Index restart = 30;
};

/**
 * Compiles a solver program of the requested kind on the placement
 * given by the mapping — the single compilation entry point. kPcg,
 * kBiCgStab, and kGmres honor `in.precond`/`in.l`; kJacobi is its
 * own method and ignores the preconditioner fields (pass
 * PreconditionerKind::kIdentity and l = nullptr).
 */
SolverProgram BuildSolverProgram(SolverKind kind,
                                 const ProgramBuildInputs& in);

/**
 * Compiles a weighted-Jacobi (damped Richardson) solver program —
 * the simplest Table II workload, exercising only SpMV + vector ops:
 *
 *     x += omega * D^{-1} (b - A x)
 *
 * Runs through the same generic SolverDriver as every other program.
 */
SolverProgram BuildJacobiSolverProgram(const CsrMatrix& a,
                                       const DataMapping& mapping,
                                       const TorusGeometry& geom,
                                       double omega = 2.0 / 3.0,
                                       const GraphOptions& graph = {});

/**
 * Compiles a BiCGStab solver program — Table II's nonsymmetric
 * workhorse, built from two SpMVs plus vector and scalar kernels per
 * iteration. The matrix need not be symmetric, so this exercises
 * Azul's generality beyond PCG. With the default kIdentity
 * preconditioner the emitted program is exactly the historical
 * unpreconditioned one; any other kind compiles the right-
 * preconditioned variant (M^{-1} applied before each SpMV), with `l`
 * required for the trisolve-based preconditioners.
 */
SolverProgram BuildBiCgStabProgram(
    const CsrMatrix& a, const DataMapping& mapping,
    const TorusGeometry& geom, const GraphOptions& graph = {},
    PreconditionerKind precond = PreconditionerKind::kIdentity,
    const CsrMatrix* l = nullptr);

/**
 * Compiles a restarted right-preconditioned GMRES(m) program. One
 * driver iteration is one full restart cycle: recompute the true
 * residual, build the m-dimensional Arnoldi basis (modified
 * Gram-Schmidt over the multi-vector bank, one SpMV + preconditioner
 * apply per column), solve the (m+1) x m Hessenberg least squares on
 * the host (Phase::Kind::kHost), and fold the correction back into
 * x. The residual estimate |g(m)| lands in ScalarReg::kRr
 * (Norm::kAbsolute). The statically unrolled iteration has O(m^2)
 * phases, re-walking the same SpMV kernel m+1 times — the paper's
 * structure-reuse observation applied across the restart loop.
 */
SolverProgram BuildGmresProgram(const ProgramBuildInputs& in);

} // namespace azul

#endif // AZUL_DATAFLOW_PROGRAM_H_
