#include "dataflow/program.h"

#include "solver/spmv.h"
#include "solver/sptrsv.h"

namespace azul {

namespace {

/** Compiles the full PCG program: SpMV + preconditioner application +
 *  vector ops (Listing 1 of the paper). */
SolverProgram
BuildPcg(const ProgramBuildInputs& in)
{
    AZUL_CHECK(in.a != nullptr);
    AZUL_CHECK(in.mapping != nullptr);
    AZUL_CHECK(in.geom.num_tiles() == in.mapping->num_tiles);
    const bool factored =
        in.precond == PreconditionerKind::kIncompleteCholesky ||
        in.precond == PreconditionerKind::kSymmetricGaussSeidel ||
        in.precond == PreconditionerKind::kSsor;
    AZUL_CHECK_MSG(!factored || in.l != nullptr,
                   "trisolve preconditioner requires a lower factor");

    SolverProgram prog;
    prog.geom = in.geom;
    prog.vec_tile = in.mapping->vec_tile;

    // ---- Matrix kernels ---------------------------------------------------
    const int spmv_idx = 0;
    prog.matrix_kernels.push_back(
        BuildSpMVKernel(*in.a, in.mapping->a_nnz_tile,
                        in.mapping->vec_tile, in.geom, VecName::kP,
                        VecName::kAp, in.graph));
    int fwd_idx = -1;
    int bwd_idx = -1;
    if (factored) {
        fwd_idx = static_cast<int>(prog.matrix_kernels.size());
        prog.matrix_kernels.push_back(BuildSpTRSVForwardKernel(
            *in.l, in.mapping->l_nnz_tile, in.mapping->vec_tile, in.geom,
            VecName::kR, VecName::kT, in.graph));
        bwd_idx = static_cast<int>(prog.matrix_kernels.size());
        prog.matrix_kernels.push_back(BuildSpTRSVBackwardKernel(
            *in.l, in.mapping->l_nnz_tile, in.mapping->vec_tile, in.geom,
            VecName::kT, VecName::kZ, in.graph));
    }
    if (in.precond == PreconditionerKind::kJacobi) {
        prog.jacobi_inv_diag.resize(static_cast<std::size_t>(in.a->rows()));
        for (Index i = 0; i < in.a->rows(); ++i) {
            const double d = in.a->At(i, i);
            AZUL_CHECK_MSG(d != 0.0, "Jacobi: zero diagonal at " << i);
            prog.jacobi_inv_diag[static_cast<std::size_t>(i)] = 1.0 / d;
        }
    }

    // Phases applying the preconditioner z = M^{-1} r.
    const auto apply_precond = [&](std::vector<Phase>& out) {
        switch (in.precond) {
          case PreconditionerKind::kIdentity:
            out.push_back(Phase::Vector(MakeCopy(VecName::kZ,
                                                 VecName::kR)));
            break;
          case PreconditionerKind::kJacobi:
            out.push_back(Phase::Vector(MakeDiagScale(VecName::kZ,
                                                      VecName::kR)));
            break;
          default:
            out.push_back(Phase::Matrix(fwd_idx));
            out.push_back(Phase::Matrix(bwd_idx));
            break;
        }
    };

    // ---- Prologue: z = M^-1 r; p = z; rz_old = r.z; rr = r.r -------------
    apply_precond(prog.prologue);
    prog.prologue.push_back(
        Phase::Vector(MakeCopy(VecName::kP, VecName::kZ)));
    prog.prologue.push_back(Phase::Vector(
        MakeDot(ScalarReg::kRzOld, VecName::kR, VecName::kZ)));
    prog.prologue.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    // ---- Warm prologue: r = b - A x0, then the cold prologue ---------------
    // The SpMV kernel reads kP, so x is staged through it; the
    // recurrence restart (z, p, rz_old, rr) is identical to the cold
    // prologue, making warm PCG exactly restarted PCG from x0.
    prog.warm_prologue.push_back(
        Phase::Vector(MakeCopy(VecName::kP, VecName::kX)));
    prog.warm_prologue.push_back(Phase::Matrix(spmv_idx));
    prog.warm_prologue.push_back(Phase::Vector(
        MakeSub(VecName::kR, VecName::kB, VecName::kAp)));
    apply_precond(prog.warm_prologue);
    prog.warm_prologue.push_back(
        Phase::Vector(MakeCopy(VecName::kP, VecName::kZ)));
    prog.warm_prologue.push_back(Phase::Vector(
        MakeDot(ScalarReg::kRzOld, VecName::kR, VecName::kZ)));
    prog.warm_prologue.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    // ---- Iteration body (Listing 1, lines 5-13) ---------------------------
    // 1. Ap = A p
    prog.iteration.push_back(Phase::Matrix(spmv_idx));
    // 2. alpha = rz_old / dot(p, Ap)
    {
        VectorKernel dot =
            MakeDot(ScalarReg::kPap, VecName::kP, VecName::kAp);
        dot.post_divide = true;
        dot.divide_dot_by_num = false; // alpha = rz_old / pap
        dot.div_num = ScalarReg::kRzOld;
        dot.div_out = ScalarReg::kAlpha;
        prog.iteration.push_back(Phase::Vector(dot));
    }
    // 3. x += alpha p ; 4. r -= alpha Ap
    prog.iteration.push_back(Phase::Vector(
        MakeAxpy(VecName::kX, ScalarReg::kAlpha, VecName::kP)));
    prog.iteration.push_back(Phase::Vector(
        MakeAxpy(VecName::kR, ScalarReg::kAlpha, VecName::kAp, -1.0)));
    // 5-6. z = M^-1 r
    apply_precond(prog.iteration);
    // 7. rz_new = r.z ; beta = rz_new / rz_old ; rz_old = rz_new
    {
        VectorKernel dot =
            MakeDot(ScalarReg::kRzNew, VecName::kR, VecName::kZ);
        dot.post_divide = true;
        dot.divide_dot_by_num = true; // beta = rz_new / rz_old
        dot.div_num = ScalarReg::kRzOld;
        dot.div_out = ScalarReg::kBeta;
        dot.copy_dot_to = true;
        dot.dot_copy_reg = ScalarReg::kRzOld;
        prog.iteration.push_back(Phase::Vector(dot));
    }
    // 8. p = z + beta p
    prog.iteration.push_back(Phase::Vector(
        MakeXpby(VecName::kP, VecName::kZ, ScalarReg::kBeta)));
    // 9. rr = r.r (convergence check read by the host)
    prog.iteration.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    // ---- True-residual recompute (residual replacement + restart) ---------
    // Re-establishes r = b - A x through the SpMV kernel (input kP,
    // output kAp), then RESTARTS the recurrence from the replaced
    // residual: z = M^-1 r, p = z, rz_old = r.z. Replacing r alone
    // would leave p and rz_old consistent with the discarded
    // recurrence; CG with such a mismatched direction can fall into a
    // limit cycle and never converge (observed under injected data
    // faults). A full restart makes the recompute equivalent to
    // restarted PCG, which converges from any finite state.
    prog.residual_recompute.push_back(
        Phase::Vector(MakeCopy(VecName::kP, VecName::kX)));
    prog.residual_recompute.push_back(Phase::Matrix(spmv_idx));
    prog.residual_recompute.push_back(Phase::Vector(
        MakeSub(VecName::kR, VecName::kB, VecName::kAp)));
    apply_precond(prog.residual_recompute);
    prog.residual_recompute.push_back(
        Phase::Vector(MakeCopy(VecName::kP, VecName::kZ)));
    prog.residual_recompute.push_back(Phase::Vector(
        MakeDot(ScalarReg::kRzOld, VecName::kR, VecName::kZ)));
    prog.residual_recompute.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    // ---- FLOP accounting --------------------------------------------------
    const double n = static_cast<double>(in.a->rows());
    prog.spmv_flops = SpMVFlops(*in.a);
    if (factored) {
        prog.sptrsv_flops = 2.0 * SpTRSVFlops(*in.l);
    }
    // 3 dots (2n each) + 3 elementwise updates (2n each) less
    // bookkeeping; kJacobi adds one n-FLOP scale.
    prog.vector_flops = 12.0 * n;
    if (in.precond == PreconditionerKind::kJacobi) {
        prog.vector_flops += n;
    }
    // Preconditioner application + copy (n) + two dots (2n each).
    prog.prologue_flops = prog.sptrsv_flops + 5.0 * n;
    // The cold prologue plus the true-residual SpMV, a staging copy
    // (n), and the subtraction (n).
    prog.warm_prologue_flops = prog.prologue_flops + prog.spmv_flops +
                               2.0 * n;
    // SpMV + preconditioner apply + two copies (n each) + sub (n) +
    // two dots (2n each).
    prog.recompute_flops = prog.spmv_flops + prog.sptrsv_flops + 7.0 * n;
    if (in.precond == PreconditionerKind::kJacobi) {
        prog.recompute_flops += n;
    }
    return prog;
}

} // namespace

const char*
SolverKindName(SolverKind kind)
{
    switch (kind) {
      case SolverKind::kPcg: return "pcg";
      case SolverKind::kJacobi: return "jacobi";
      case SolverKind::kBiCgStab: return "bicgstab";
      case SolverKind::kGmres: return "gmres";
    }
    return "unknown";
}

bool
ParseSolverKind(const std::string& text, SolverKind& out)
{
    for (const SolverKind kind :
         {SolverKind::kPcg, SolverKind::kJacobi, SolverKind::kBiCgStab,
          SolverKind::kGmres}) {
        if (text == SolverKindName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

SolverProgram
BuildSolverProgram(SolverKind kind, const ProgramBuildInputs& in)
{
    AZUL_CHECK(in.a != nullptr);
    AZUL_CHECK(in.mapping != nullptr);
    switch (kind) {
      case SolverKind::kPcg:
        return BuildPcg(in);
      case SolverKind::kJacobi:
        return BuildJacobiSolverProgram(*in.a, *in.mapping, in.geom,
                                        in.jacobi_omega, in.graph);
      case SolverKind::kBiCgStab:
        return BuildBiCgStabProgram(*in.a, *in.mapping, in.geom,
                                    in.graph, in.precond, in.l);
      case SolverKind::kGmres:
        return BuildGmresProgram(in);
    }
    AZUL_CHECK_MSG(false, "unknown solver kind");
    return SolverProgram{};
}

SolverProgram
BuildJacobiSolverProgram(const CsrMatrix& a, const DataMapping& mapping,
                         const TorusGeometry& geom, double omega,
                         const GraphOptions& graph)
{
    AZUL_CHECK(geom.num_tiles() == mapping.num_tiles);
    AZUL_CHECK(omega > 0.0 && omega <= 1.0);
    SolverProgram prog;
    prog.geom = geom;
    prog.vec_tile = mapping.vec_tile;
    prog.matrix_kernels.push_back(
        BuildSpMVKernel(a, mapping.a_nnz_tile, mapping.vec_tile, geom,
                        VecName::kX, VecName::kAp, graph));
    prog.jacobi_inv_diag.resize(static_cast<std::size_t>(a.rows()));
    for (Index i = 0; i < a.rows(); ++i) {
        const double d = a.At(i, i);
        AZUL_CHECK_MSG(d != 0.0, "Jacobi: zero diagonal at " << i);
        prog.jacobi_inv_diag[static_cast<std::size_t>(i)] = 1.0 / d;
    }

    // Prologue: rr = b.b (r == b after LoadProblem with x = 0).
    prog.prologue.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    // Warm prologue: the SpMV kernel already reads kX, so the true
    // residual needs no staging copy: Ap = A x0; r = b - Ap; rr = r.r.
    prog.warm_prologue.push_back(Phase::Matrix(0));
    prog.warm_prologue.push_back(Phase::Vector(
        MakeSub(VecName::kR, VecName::kB, VecName::kAp)));
    prog.warm_prologue.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    // Iteration: Ap = A x; r = b - Ap; z = D^-1 r; x += omega z;
    // rr = r.r.
    prog.iteration.push_back(Phase::Matrix(0));
    prog.iteration.push_back(Phase::Vector(
        MakeSub(VecName::kR, VecName::kB, VecName::kAp)));
    prog.iteration.push_back(Phase::Vector(
        MakeDiagScale(VecName::kZ, VecName::kR)));
    prog.iteration.push_back(Phase::Vector(
        MakeAxpyConst(VecName::kX, omega, VecName::kZ)));
    prog.iteration.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    // True-residual recompute (the iteration's own residual path
    // without the x update): Ap = A x; r = b - Ap; rr = r.r.
    prog.residual_recompute.push_back(Phase::Matrix(0));
    prog.residual_recompute.push_back(Phase::Vector(
        MakeSub(VecName::kR, VecName::kB, VecName::kAp)));
    prog.residual_recompute.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    const double n = static_cast<double>(a.rows());
    prog.spmv_flops = SpMVFlops(a);
    prog.vector_flops = 7.0 * n; // sub + scale + axpy + dot
    prog.prologue_flops = 2.0 * n;  // one dot
    // True-residual SpMV + sub (n) + dot (2n).
    prog.warm_prologue_flops = prog.spmv_flops + 3.0 * n;
    prog.recompute_flops = prog.spmv_flops + 3.0 * n;
    return prog;
}

namespace {

/** Fills `prog.jacobi_inv_diag` with 1/diag(A) for kDiagScale. */
void
FillJacobiInvDiag(SolverProgram& prog, const CsrMatrix& a)
{
    prog.jacobi_inv_diag.resize(static_cast<std::size_t>(a.rows()));
    for (Index i = 0; i < a.rows(); ++i) {
        const double d = a.At(i, i);
        AZUL_CHECK_MSG(d != 0.0, "Jacobi: zero diagonal at " << i);
        prog.jacobi_inv_diag[static_cast<std::size_t>(i)] = 1.0 / d;
    }
}

/** True for preconditioners applied as an SpTRSV pair. */
bool
IsFactoredPrecond(PreconditionerKind precond)
{
    return precond == PreconditionerKind::kIncompleteCholesky ||
           precond == PreconditionerKind::kSymmetricGaussSeidel ||
           precond == PreconditionerKind::kSsor;
}

/** The right-preconditioned BiCGStab variant (precond != identity).
 *  Kernel/vector layout differs from the historical unpreconditioned
 *  program: both SpMVs read the preconditioned direction in kZ. */
SolverProgram
BuildPreconditionedBiCgStab(const CsrMatrix& a,
                            const DataMapping& mapping,
                            const TorusGeometry& geom,
                            const GraphOptions& graph,
                            PreconditionerKind precond,
                            const CsrMatrix* l)
{
    AZUL_CHECK(geom.num_tiles() == mapping.num_tiles);
    const bool factored = IsFactoredPrecond(precond);
    AZUL_CHECK_MSG(!factored || l != nullptr,
                   "trisolve preconditioner requires a lower factor");

    SolverProgram prog;
    prog.geom = geom;
    prog.vec_tile = mapping.vec_tile;

    // Two SpMVs per iteration, both reading the preconditioned
    // direction z^ = M^-1 p (resp. s^ = M^-1 s) staged in kZ:
    // v = A z^ -> kAp and t = A s^ -> kT.
    prog.matrix_kernels.push_back(
        BuildSpMVKernel(a, mapping.a_nnz_tile, mapping.vec_tile, geom,
                        VecName::kZ, VecName::kAp, graph));
    prog.matrix_kernels.push_back(
        BuildSpMVKernel(a, mapping.a_nnz_tile, mapping.vec_tile, geom,
                        VecName::kZ, VecName::kT, graph));
    int fwd_idx = -1;
    int bwd_idx = -1;
    if (factored) {
        fwd_idx = static_cast<int>(prog.matrix_kernels.size());
        prog.matrix_kernels.push_back(BuildSpTRSVForwardKernel(
            *l, mapping.l_nnz_tile, mapping.vec_tile, geom, VecName::kZ,
            VecName::kT, graph));
        bwd_idx = static_cast<int>(prog.matrix_kernels.size());
        prog.matrix_kernels.push_back(BuildSpTRSVBackwardKernel(
            *l, mapping.l_nnz_tile, mapping.vec_tile, geom, VecName::kT,
            VecName::kZ, graph));
    }
    if (precond == PreconditionerKind::kJacobi) {
        FillJacobiInvDiag(prog, a);
    }

    // kZ = M^-1 src. The factored path stages src through kZ, solves
    // L w = z into kT, then L^T z = w back into kZ; kT is dead at
    // every apply site.
    const auto apply_precond = [&](std::vector<Phase>& out,
                                   VecName src) {
        if (precond == PreconditionerKind::kJacobi) {
            out.push_back(
                Phase::Vector(MakeDiagScale(VecName::kZ, src)));
            return;
        }
        out.push_back(Phase::Vector(MakeCopy(VecName::kZ, src)));
        out.push_back(Phase::Matrix(fwd_idx));
        out.push_back(Phase::Matrix(bwd_idx));
    };

    // ---- Prologue: r0 = r; p = r; rho_old = r0.r; rr = r.r --------------
    prog.prologue.push_back(
        Phase::Vector(MakeCopy(VecName::kR0, VecName::kR)));
    prog.prologue.push_back(
        Phase::Vector(MakeCopy(VecName::kP, VecName::kR)));
    prog.prologue.push_back(Phase::Vector(
        MakeDot(ScalarReg::kRzOld, VecName::kR0, VecName::kR)));
    prog.prologue.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    // ---- Warm prologue: r = b - A x0, then the cold prologue --------------
    // The true residual is staged through the second SpMV kernel
    // (input kZ, output kT) exactly like residual_recompute.
    prog.warm_prologue.push_back(
        Phase::Vector(MakeCopy(VecName::kZ, VecName::kX)));
    prog.warm_prologue.push_back(Phase::Matrix(1));
    prog.warm_prologue.push_back(Phase::Vector(
        MakeSub(VecName::kR, VecName::kB, VecName::kT)));
    prog.warm_prologue.push_back(
        Phase::Vector(MakeCopy(VecName::kR0, VecName::kR)));
    prog.warm_prologue.push_back(
        Phase::Vector(MakeCopy(VecName::kP, VecName::kR)));
    prog.warm_prologue.push_back(Phase::Vector(
        MakeDot(ScalarReg::kRzOld, VecName::kR0, VecName::kR)));
    prog.warm_prologue.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    // ---- Iteration --------------------------------------------------------
    // 1. z^ = M^-1 p ; v = A z^
    apply_precond(prog.iteration, VecName::kP);
    prog.iteration.push_back(Phase::Matrix(0));
    // 2. alpha = rho_old / (r0 . v)
    {
        VectorKernel dot =
            MakeDot(ScalarReg::kPap, VecName::kR0, VecName::kAp);
        dot.post_divide = true;
        dot.div_num = ScalarReg::kRzOld;
        dot.div_out = ScalarReg::kAlpha;
        prog.iteration.push_back(Phase::Vector(dot));
    }
    // 3. s = r - alpha v ; x += alpha z^ (z^ dies here)
    prog.iteration.push_back(
        Phase::Vector(MakeCopy(VecName::kS, VecName::kR)));
    prog.iteration.push_back(Phase::Vector(
        MakeAxpy(VecName::kS, ScalarReg::kAlpha, VecName::kAp, -1.0)));
    prog.iteration.push_back(Phase::Vector(
        MakeAxpy(VecName::kX, ScalarReg::kAlpha, VecName::kZ)));
    // 4. s^ = M^-1 s ; t = A s^
    apply_precond(prog.iteration, VecName::kS);
    prog.iteration.push_back(Phase::Matrix(1));
    // 5. omega = (t . s) / (t . t)
    prog.iteration.push_back(Phase::Vector(
        MakeDot(ScalarReg::kTmp, VecName::kT, VecName::kS)));
    {
        VectorKernel dot =
            MakeDot(ScalarReg::kPap, VecName::kT, VecName::kT);
        dot.post_divide = true;
        dot.div_num = ScalarReg::kTmp;
        dot.div_out = ScalarReg::kOmega; // (t.s) / (t.t)
        prog.iteration.push_back(Phase::Vector(dot));
    }
    // 6. x += omega s^ ; r = s - omega t
    prog.iteration.push_back(Phase::Vector(
        MakeAxpy(VecName::kX, ScalarReg::kOmega, VecName::kZ)));
    prog.iteration.push_back(
        Phase::Vector(MakeCopy(VecName::kR, VecName::kS)));
    prog.iteration.push_back(Phase::Vector(
        MakeAxpy(VecName::kR, ScalarReg::kOmega, VecName::kT, -1.0)));
    // 7. rho_new = r0 . r; beta = (rho_new/rho_old)*(alpha/omega);
    //    rho_old = rho_new
    prog.iteration.push_back(Phase::Vector(
        MakeDot(ScalarReg::kRzNew, VecName::kR0, VecName::kR)));
    {
        ScalarOp beta;
        beta.kind = ScalarOp::Kind::kMulDiv;
        beta.out = ScalarReg::kBeta;
        beta.a = ScalarReg::kRzNew;
        beta.b = ScalarReg::kRzOld;
        beta.c = ScalarReg::kAlpha;
        beta.d = ScalarReg::kOmega;
        prog.iteration.push_back(Phase::Scalar(beta));
        ScalarOp rot;
        rot.kind = ScalarOp::Kind::kCopy;
        rot.out = ScalarReg::kRzOld;
        rot.a = ScalarReg::kRzNew;
        prog.iteration.push_back(Phase::Scalar(rot));
    }
    // 8. p = r + beta (p - omega v)
    prog.iteration.push_back(Phase::Vector(
        MakeAxpy(VecName::kP, ScalarReg::kOmega, VecName::kAp, -1.0)));
    prog.iteration.push_back(Phase::Vector(
        MakeXpby(VecName::kP, VecName::kR, ScalarReg::kBeta)));
    // 9. rr = r . r
    prog.iteration.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    // ---- True-residual recompute (residual replacement) -------------------
    prog.residual_recompute.push_back(
        Phase::Vector(MakeCopy(VecName::kZ, VecName::kX)));
    prog.residual_recompute.push_back(Phase::Matrix(1));
    prog.residual_recompute.push_back(Phase::Vector(
        MakeSub(VecName::kR, VecName::kB, VecName::kT)));
    prog.residual_recompute.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    const double n = static_cast<double>(a.rows());
    prog.spmv_flops = 2.0 * SpMVFlops(a);
    if (factored) {
        // Two M^-1 applies per iteration, two trisolves each.
        prog.sptrsv_flops = 4.0 * SpTRSVFlops(*l);
    }
    // The unpreconditioned 22n plus the two x-update axpys staged off
    // kZ and the apply staging (copies / diag scales).
    prog.vector_flops = 24.0 * n;
    if (precond == PreconditionerKind::kJacobi) {
        prog.vector_flops += 2.0 * n;
    }
    prog.prologue_flops = 6.0 * n; // two copies + two dots
    prog.warm_prologue_flops = prog.prologue_flops + SpMVFlops(a) + 2.0 * n;
    prog.recompute_flops = SpMVFlops(a) + 4.0 * n;
    return prog;
}

} // namespace

SolverProgram
BuildBiCgStabProgram(const CsrMatrix& a, const DataMapping& mapping,
                     const TorusGeometry& geom,
                     const GraphOptions& graph,
                     PreconditionerKind precond, const CsrMatrix* l)
{
    // The identity-preconditioner program is kept exactly as it
    // always was (same kernels, same phase list), so existing golden
    // traces and callers see an unchanged compilation.
    if (precond != PreconditionerKind::kIdentity) {
        return BuildPreconditionedBiCgStab(a, mapping, geom, graph,
                                           precond, l);
    }
    AZUL_CHECK(geom.num_tiles() == mapping.num_tiles);
    SolverProgram prog;
    prog.geom = geom;
    prog.vec_tile = mapping.vec_tile;

    // Two SpMVs per iteration: v = A p and t = A s.
    prog.matrix_kernels.push_back(
        BuildSpMVKernel(a, mapping.a_nnz_tile, mapping.vec_tile, geom,
                        VecName::kP, VecName::kAp, graph));
    prog.matrix_kernels.push_back(
        BuildSpMVKernel(a, mapping.a_nnz_tile, mapping.vec_tile, geom,
                        VecName::kS, VecName::kT, graph));

    // ---- Prologue: r0 = r; p = r; rho_old = r0.r; rr = r.r --------------
    prog.prologue.push_back(
        Phase::Vector(MakeCopy(VecName::kR0, VecName::kR)));
    prog.prologue.push_back(
        Phase::Vector(MakeCopy(VecName::kP, VecName::kR)));
    prog.prologue.push_back(Phase::Vector(
        MakeDot(ScalarReg::kRzOld, VecName::kR0, VecName::kR)));
    prog.prologue.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    // ---- Warm prologue: r = b - A x0, then the cold prologue --------------
    // The true residual is staged through the second SpMV kernel
    // (input kS, output kT) exactly like residual_recompute; the
    // shadow-residual restart (r0, p, rho_old, rr) then matches the
    // cold prologue, making warm BiCGStab exactly a restart from x0.
    prog.warm_prologue.push_back(
        Phase::Vector(MakeCopy(VecName::kS, VecName::kX)));
    prog.warm_prologue.push_back(Phase::Matrix(1));
    prog.warm_prologue.push_back(Phase::Vector(
        MakeSub(VecName::kR, VecName::kB, VecName::kT)));
    prog.warm_prologue.push_back(
        Phase::Vector(MakeCopy(VecName::kR0, VecName::kR)));
    prog.warm_prologue.push_back(
        Phase::Vector(MakeCopy(VecName::kP, VecName::kR)));
    prog.warm_prologue.push_back(Phase::Vector(
        MakeDot(ScalarReg::kRzOld, VecName::kR0, VecName::kR)));
    prog.warm_prologue.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    // ---- Iteration --------------------------------------------------------
    // 1. v = A p
    prog.iteration.push_back(Phase::Matrix(0));
    // 2. alpha = rho_old / (r0 . v)
    {
        VectorKernel dot =
            MakeDot(ScalarReg::kPap, VecName::kR0, VecName::kAp);
        dot.post_divide = true;
        dot.div_num = ScalarReg::kRzOld;
        dot.div_out = ScalarReg::kAlpha;
        prog.iteration.push_back(Phase::Vector(dot));
    }
    // 3. s = r - alpha v
    prog.iteration.push_back(
        Phase::Vector(MakeCopy(VecName::kS, VecName::kR)));
    prog.iteration.push_back(Phase::Vector(
        MakeAxpy(VecName::kS, ScalarReg::kAlpha, VecName::kAp, -1.0)));
    // 4. t = A s
    prog.iteration.push_back(Phase::Matrix(1));
    // 5. omega = (t . s) / (t . t)
    prog.iteration.push_back(Phase::Vector(
        MakeDot(ScalarReg::kTmp, VecName::kT, VecName::kS)));
    {
        VectorKernel dot =
            MakeDot(ScalarReg::kPap, VecName::kT, VecName::kT);
        dot.post_divide = true;
        dot.div_num = ScalarReg::kTmp;
        dot.div_out = ScalarReg::kOmega; // (t.s) / (t.t)
        prog.iteration.push_back(Phase::Vector(dot));
    }
    // 6. x += alpha p + omega s
    prog.iteration.push_back(Phase::Vector(
        MakeAxpy(VecName::kX, ScalarReg::kAlpha, VecName::kP)));
    prog.iteration.push_back(Phase::Vector(
        MakeAxpy(VecName::kX, ScalarReg::kOmega, VecName::kS)));
    // 7. r = s - omega t
    prog.iteration.push_back(
        Phase::Vector(MakeCopy(VecName::kR, VecName::kS)));
    prog.iteration.push_back(Phase::Vector(
        MakeAxpy(VecName::kR, ScalarReg::kOmega, VecName::kT, -1.0)));
    // 8. rho_new = r0 . r; beta = (rho_new/rho_old)*(alpha/omega);
    //    rho_old = rho_new
    prog.iteration.push_back(Phase::Vector(
        MakeDot(ScalarReg::kRzNew, VecName::kR0, VecName::kR)));
    {
        ScalarOp beta;
        beta.kind = ScalarOp::Kind::kMulDiv;
        beta.out = ScalarReg::kBeta;
        beta.a = ScalarReg::kRzNew;
        beta.b = ScalarReg::kRzOld;
        beta.c = ScalarReg::kAlpha;
        beta.d = ScalarReg::kOmega;
        prog.iteration.push_back(Phase::Scalar(beta));
        ScalarOp rot;
        rot.kind = ScalarOp::Kind::kCopy;
        rot.out = ScalarReg::kRzOld;
        rot.a = ScalarReg::kRzNew;
        prog.iteration.push_back(Phase::Scalar(rot));
    }
    // 9. p = r + beta (p - omega v)
    prog.iteration.push_back(Phase::Vector(
        MakeAxpy(VecName::kP, ScalarReg::kOmega, VecName::kAp, -1.0)));
    prog.iteration.push_back(Phase::Vector(
        MakeXpby(VecName::kP, VecName::kR, ScalarReg::kBeta)));
    // 10. rr = r . r
    prog.iteration.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    // ---- True-residual recompute (residual replacement) -------------------
    // Uses the second SpMV kernel (input kS, output kT); both are
    // dead across iteration boundaries, so nothing needs restoring.
    prog.residual_recompute.push_back(
        Phase::Vector(MakeCopy(VecName::kS, VecName::kX)));
    prog.residual_recompute.push_back(Phase::Matrix(1));
    prog.residual_recompute.push_back(Phase::Vector(
        MakeSub(VecName::kR, VecName::kB, VecName::kT)));
    prog.residual_recompute.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    const double n = static_cast<double>(a.rows());
    prog.spmv_flops = 2.0 * SpMVFlops(a);
    prog.vector_flops = 22.0 * n;
    prog.prologue_flops = 6.0 * n; // two copies + two dots
    // The cold prologue plus the true-residual SpMV, its staging copy
    // (n), and the subtraction (n).
    prog.warm_prologue_flops = prog.prologue_flops + SpMVFlops(a) + 2.0 * n;
    // One SpMV + copy (n) + sub (n) + dot (2n).
    prog.recompute_flops = SpMVFlops(a) + 4.0 * n;
    return prog;
}

SolverProgram
BuildGmresProgram(const ProgramBuildInputs& in)
{
    AZUL_CHECK(in.a != nullptr);
    AZUL_CHECK(in.mapping != nullptr);
    AZUL_CHECK(in.geom.num_tiles() == in.mapping->num_tiles);
    AZUL_CHECK_MSG(in.restart >= 1, "GMRES restart must be >= 1");
    const Index m = in.restart;
    const bool factored = IsFactoredPrecond(in.precond);
    AZUL_CHECK_MSG(!factored || in.l != nullptr,
                   "trisolve preconditioner requires a lower factor");

    SolverProgram prog;
    prog.geom = in.geom;
    prog.vec_tile = in.mapping->vec_tile;

    // One SpMV kernel (input kP, output kAp), re-walked m+1 times per
    // restart — the paper's structure-reuse observation applied
    // across the Arnoldi loop. Factored preconditioners add the
    // SpTRSV pair kZ -> kT -> kP.
    const int spmv_idx = 0;
    prog.matrix_kernels.push_back(
        BuildSpMVKernel(*in.a, in.mapping->a_nnz_tile,
                        in.mapping->vec_tile, in.geom, VecName::kP,
                        VecName::kAp, in.graph));
    int fwd_idx = -1;
    int bwd_idx = -1;
    if (factored) {
        fwd_idx = static_cast<int>(prog.matrix_kernels.size());
        prog.matrix_kernels.push_back(BuildSpTRSVForwardKernel(
            *in.l, in.mapping->l_nnz_tile, in.mapping->vec_tile, in.geom,
            VecName::kZ, VecName::kT, in.graph));
        bwd_idx = static_cast<int>(prog.matrix_kernels.size());
        prog.matrix_kernels.push_back(BuildSpTRSVBackwardKernel(
            *in.l, in.mapping->l_nnz_tile, in.mapping->vec_tile, in.geom,
            VecName::kT, VecName::kP, in.graph));
    }
    if (in.precond == PreconditionerKind::kJacobi) {
        FillJacobiInvDiag(prog, *in.a);
    }

    // Register-bank layout: the Krylov basis V_0..V_{m-1} in the
    // vector bank; the scalar bank holds H column-major (column j at
    // j*(m+1), rows 0..j+1 written), then beta, then y.
    prog.num_bank_vectors = m;
    const auto h_idx = [m](Index i, Index j) {
        return static_cast<std::int32_t>(j * (m + 1) + i);
    };
    const std::int32_t beta_off = static_cast<std::int32_t>(m * (m + 1));
    const std::int32_t y_off = beta_off + 1;
    prog.num_bank_scalars = static_cast<Index>(y_off) + m;

    // kP = M^-1 src (named vector or bank slot when src_bank >= 0).
    const auto apply_precond = [&](std::vector<Phase>& out, VecName src,
                                   std::int32_t src_bank) {
        switch (in.precond) {
          case PreconditionerKind::kIdentity: {
            VectorKernel k = MakeCopy(VecName::kP, src);
            k.src_a_bank = src_bank;
            out.push_back(Phase::Vector(k));
            break;
          }
          case PreconditionerKind::kJacobi: {
            VectorKernel k = MakeDiagScale(VecName::kP, src);
            k.src_a_bank = src_bank;
            out.push_back(Phase::Vector(k));
            break;
          }
          default: {
            VectorKernel k = MakeCopy(VecName::kZ, src);
            k.src_a_bank = src_bank;
            out.push_back(Phase::Vector(k));
            out.push_back(Phase::Matrix(fwd_idx));
            out.push_back(Phase::Matrix(bwd_idx));
            break;
          }
        }
    };

    // ---- Prologue: rr = ||r|| (r == b after LoadProblem, x = 0) ----------
    // The iteration body recomputes the true residual itself, so the
    // prologue only establishes the driver's initial convergence read.
    {
        VectorKernel norm =
            MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR);
        norm.post_sqrt = true;
        prog.prologue.push_back(Phase::Vector(norm));
    }

    // ---- Warm prologue: r = b - A x0; rr = ||r|| --------------------------
    prog.warm_prologue.push_back(
        Phase::Vector(MakeCopy(VecName::kP, VecName::kX)));
    prog.warm_prologue.push_back(Phase::Matrix(spmv_idx));
    prog.warm_prologue.push_back(Phase::Vector(
        MakeSub(VecName::kR, VecName::kB, VecName::kAp)));
    {
        VectorKernel norm =
            MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR);
        norm.post_sqrt = true;
        prog.warm_prologue.push_back(Phase::Vector(norm));
    }

    // ---- Iteration: one full restart cycle --------------------------------
    // 1. True residual r = b - A x; beta = ||r||; V_0 = r / beta.
    prog.iteration.push_back(
        Phase::Vector(MakeCopy(VecName::kP, VecName::kX)));
    prog.iteration.push_back(Phase::Matrix(spmv_idx));
    prog.iteration.push_back(Phase::Vector(
        MakeSub(VecName::kR, VecName::kB, VecName::kAp)));
    {
        VectorKernel norm =
            MakeDot(ScalarReg::kCount, VecName::kR, VecName::kR);
        norm.post_sqrt = true;
        norm.dot_out_bank = beta_off;
        prog.iteration.push_back(Phase::Vector(norm));
    }
    {
        VectorKernel k =
            MakeScale(VecName::kX, ScalarReg::kAlpha, VecName::kR,
                      /*invert=*/true);
        k.dst_bank = 0;
        k.scale_bank = beta_off;
        prog.iteration.push_back(Phase::Vector(k));
    }
    // 2. Arnoldi with modified Gram-Schmidt, one column per j.
    for (Index j = 0; j < m; ++j) {
        apply_precond(prog.iteration, VecName::kX,
                      static_cast<std::int32_t>(j));
        prog.iteration.push_back(Phase::Matrix(spmv_idx));
        for (Index i = 0; i <= j; ++i) {
            VectorKernel dot =
                MakeDot(ScalarReg::kCount, VecName::kAp, VecName::kX);
            dot.src_b_bank = static_cast<std::int32_t>(i);
            dot.dot_out_bank = h_idx(i, j);
            prog.iteration.push_back(Phase::Vector(dot));
            VectorKernel axpy = MakeAxpy(VecName::kAp,
                                         ScalarReg::kAlpha,
                                         VecName::kX, -1.0);
            axpy.src_a_bank = static_cast<std::int32_t>(i);
            axpy.scale_bank = h_idx(i, j);
            prog.iteration.push_back(Phase::Vector(axpy));
        }
        {
            VectorKernel norm =
                MakeDot(ScalarReg::kCount, VecName::kAp, VecName::kAp);
            norm.post_sqrt = true;
            norm.dot_out_bank = h_idx(j + 1, j);
            prog.iteration.push_back(Phase::Vector(norm));
        }
        if (j + 1 < m) {
            VectorKernel k =
                MakeScale(VecName::kX, ScalarReg::kAlpha, VecName::kAp,
                          /*invert=*/true);
            k.dst_bank = static_cast<std::int32_t>(j + 1);
            k.scale_bank = h_idx(j + 1, j);
            prog.iteration.push_back(Phase::Vector(k));
        }
    }
    // 3. Host least squares: Givens QR of H, back-substitution into
    //    y, residual estimate |g(m)| -> kRr.
    {
        HostOp lsq;
        lsq.kind = HostOp::Kind::kGmresLsq;
        lsq.restart = m;
        lsq.h_offset = 0;
        lsq.beta_offset = beta_off;
        lsq.y_offset = y_off;
        lsq.out = ScalarReg::kRr;
        prog.iteration.push_back(Phase::Host(lsq));
    }
    // 4. Correction: s = V y; x += M^-1 s.
    {
        VectorKernel k =
            MakeScale(VecName::kS, ScalarReg::kAlpha, VecName::kX);
        k.src_a_bank = 0;
        k.scale_bank = y_off;
        prog.iteration.push_back(Phase::Vector(k));
    }
    for (Index j = 1; j < m; ++j) {
        VectorKernel axpy =
            MakeAxpy(VecName::kS, ScalarReg::kAlpha, VecName::kX);
        axpy.src_a_bank = static_cast<std::int32_t>(j);
        axpy.scale_bank = y_off + static_cast<std::int32_t>(j);
        prog.iteration.push_back(Phase::Vector(axpy));
    }
    apply_precond(prog.iteration, VecName::kS, -1);
    prog.iteration.push_back(Phase::Vector(
        MakeAxpyConst(VecName::kX, 1.0, VecName::kP)));

    // ---- True-residual recompute ------------------------------------------
    // Identical to the warm prologue: GMRES is self-healing (every
    // restart rebuilds its state from x), so replacing r + rr is a
    // complete recovery — used by the mixed-precision FP64 recovery
    // path and the fault-injection rollback.
    prog.residual_recompute.push_back(
        Phase::Vector(MakeCopy(VecName::kP, VecName::kX)));
    prog.residual_recompute.push_back(Phase::Matrix(spmv_idx));
    prog.residual_recompute.push_back(Phase::Vector(
        MakeSub(VecName::kR, VecName::kB, VecName::kAp)));
    {
        VectorKernel norm =
            MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR);
        norm.post_sqrt = true;
        prog.residual_recompute.push_back(Phase::Vector(norm));
    }

    // The driver reads ||r|| (or its |g(m)| estimate) directly.
    prog.convergence.residual_reg = ScalarReg::kRr;
    prog.convergence.norm = ConvergenceSpec::Norm::kAbsolute;

    // ---- FLOP accounting (per restart cycle) ------------------------------
    const double n = static_cast<double>(in.a->rows());
    const double md = static_cast<double>(m);
    // m Arnoldi SpMVs + the true-residual SpMV.
    prog.spmv_flops = (md + 1.0) * SpMVFlops(*in.a);
    if (factored) {
        // m+1 M^-1 applies (m Arnoldi + 1 correction), 2 trisolves each.
        prog.sptrsv_flops = 2.0 * (md + 1.0) * SpTRSVFlops(*in.l);
    }
    // Dots: 1 + m(m+1)/2 + m at 2n each; axpys: m(m+1)/2 MGS + (m-1)
    // accumulate + 1 x update at 2n; scales/copies at n.
    const double dots = 1.0 + md * (md + 1.0) / 2.0 + md;
    const double axpys = md * (md + 1.0) / 2.0 + md;
    prog.vector_flops = 2.0 * n * (dots + axpys) + n * (2.0 * md + 4.0);
    if (in.precond == PreconditionerKind::kJacobi) {
        prog.vector_flops += (md + 1.0) * n;
    }
    prog.prologue_flops = 2.0 * n;
    prog.warm_prologue_flops = SpMVFlops(*in.a) + 4.0 * n;
    prog.recompute_flops = SpMVFlops(*in.a) + 4.0 * n;
    return prog;
}

} // namespace azul
