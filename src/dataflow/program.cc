#include "dataflow/program.h"

#include "solver/spmv.h"
#include "solver/sptrsv.h"

namespace azul {

namespace {

/** Compiles the full PCG program: SpMV + preconditioner application +
 *  vector ops (Listing 1 of the paper). */
SolverProgram
BuildPcg(const ProgramBuildInputs& in)
{
    AZUL_CHECK(in.a != nullptr);
    AZUL_CHECK(in.mapping != nullptr);
    AZUL_CHECK(in.geom.num_tiles() == in.mapping->num_tiles);
    const bool factored =
        in.precond == PreconditionerKind::kIncompleteCholesky ||
        in.precond == PreconditionerKind::kSymmetricGaussSeidel ||
        in.precond == PreconditionerKind::kSsor;
    AZUL_CHECK_MSG(!factored || in.l != nullptr,
                   "trisolve preconditioner requires a lower factor");

    SolverProgram prog;
    prog.geom = in.geom;
    prog.vec_tile = in.mapping->vec_tile;

    // ---- Matrix kernels ---------------------------------------------------
    const int spmv_idx = 0;
    prog.matrix_kernels.push_back(
        BuildSpMVKernel(*in.a, in.mapping->a_nnz_tile,
                        in.mapping->vec_tile, in.geom, VecName::kP,
                        VecName::kAp, in.graph));
    int fwd_idx = -1;
    int bwd_idx = -1;
    if (factored) {
        fwd_idx = static_cast<int>(prog.matrix_kernels.size());
        prog.matrix_kernels.push_back(BuildSpTRSVForwardKernel(
            *in.l, in.mapping->l_nnz_tile, in.mapping->vec_tile, in.geom,
            VecName::kR, VecName::kT, in.graph));
        bwd_idx = static_cast<int>(prog.matrix_kernels.size());
        prog.matrix_kernels.push_back(BuildSpTRSVBackwardKernel(
            *in.l, in.mapping->l_nnz_tile, in.mapping->vec_tile, in.geom,
            VecName::kT, VecName::kZ, in.graph));
    }
    if (in.precond == PreconditionerKind::kJacobi) {
        prog.jacobi_inv_diag.resize(static_cast<std::size_t>(in.a->rows()));
        for (Index i = 0; i < in.a->rows(); ++i) {
            const double d = in.a->At(i, i);
            AZUL_CHECK_MSG(d != 0.0, "Jacobi: zero diagonal at " << i);
            prog.jacobi_inv_diag[static_cast<std::size_t>(i)] = 1.0 / d;
        }
    }

    // Phases applying the preconditioner z = M^{-1} r.
    const auto apply_precond = [&](std::vector<Phase>& out) {
        switch (in.precond) {
          case PreconditionerKind::kIdentity:
            out.push_back(Phase::Vector(MakeCopy(VecName::kZ,
                                                 VecName::kR)));
            break;
          case PreconditionerKind::kJacobi:
            out.push_back(Phase::Vector(MakeDiagScale(VecName::kZ,
                                                      VecName::kR)));
            break;
          default:
            out.push_back(Phase::Matrix(fwd_idx));
            out.push_back(Phase::Matrix(bwd_idx));
            break;
        }
    };

    // ---- Prologue: z = M^-1 r; p = z; rz_old = r.z; rr = r.r -------------
    apply_precond(prog.prologue);
    prog.prologue.push_back(
        Phase::Vector(MakeCopy(VecName::kP, VecName::kZ)));
    prog.prologue.push_back(Phase::Vector(
        MakeDot(ScalarReg::kRzOld, VecName::kR, VecName::kZ)));
    prog.prologue.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    // ---- Warm prologue: r = b - A x0, then the cold prologue ---------------
    // The SpMV kernel reads kP, so x is staged through it; the
    // recurrence restart (z, p, rz_old, rr) is identical to the cold
    // prologue, making warm PCG exactly restarted PCG from x0.
    prog.warm_prologue.push_back(
        Phase::Vector(MakeCopy(VecName::kP, VecName::kX)));
    prog.warm_prologue.push_back(Phase::Matrix(spmv_idx));
    prog.warm_prologue.push_back(Phase::Vector(
        MakeSub(VecName::kR, VecName::kB, VecName::kAp)));
    apply_precond(prog.warm_prologue);
    prog.warm_prologue.push_back(
        Phase::Vector(MakeCopy(VecName::kP, VecName::kZ)));
    prog.warm_prologue.push_back(Phase::Vector(
        MakeDot(ScalarReg::kRzOld, VecName::kR, VecName::kZ)));
    prog.warm_prologue.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    // ---- Iteration body (Listing 1, lines 5-13) ---------------------------
    // 1. Ap = A p
    prog.iteration.push_back(Phase::Matrix(spmv_idx));
    // 2. alpha = rz_old / dot(p, Ap)
    {
        VectorKernel dot =
            MakeDot(ScalarReg::kPap, VecName::kP, VecName::kAp);
        dot.post_divide = true;
        dot.divide_dot_by_num = false; // alpha = rz_old / pap
        dot.div_num = ScalarReg::kRzOld;
        dot.div_out = ScalarReg::kAlpha;
        prog.iteration.push_back(Phase::Vector(dot));
    }
    // 3. x += alpha p ; 4. r -= alpha Ap
    prog.iteration.push_back(Phase::Vector(
        MakeAxpy(VecName::kX, ScalarReg::kAlpha, VecName::kP)));
    prog.iteration.push_back(Phase::Vector(
        MakeAxpy(VecName::kR, ScalarReg::kAlpha, VecName::kAp, -1.0)));
    // 5-6. z = M^-1 r
    apply_precond(prog.iteration);
    // 7. rz_new = r.z ; beta = rz_new / rz_old ; rz_old = rz_new
    {
        VectorKernel dot =
            MakeDot(ScalarReg::kRzNew, VecName::kR, VecName::kZ);
        dot.post_divide = true;
        dot.divide_dot_by_num = true; // beta = rz_new / rz_old
        dot.div_num = ScalarReg::kRzOld;
        dot.div_out = ScalarReg::kBeta;
        dot.copy_dot_to = true;
        dot.dot_copy_reg = ScalarReg::kRzOld;
        prog.iteration.push_back(Phase::Vector(dot));
    }
    // 8. p = z + beta p
    prog.iteration.push_back(Phase::Vector(
        MakeXpby(VecName::kP, VecName::kZ, ScalarReg::kBeta)));
    // 9. rr = r.r (convergence check read by the host)
    prog.iteration.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    // ---- True-residual recompute (residual replacement + restart) ---------
    // Re-establishes r = b - A x through the SpMV kernel (input kP,
    // output kAp), then RESTARTS the recurrence from the replaced
    // residual: z = M^-1 r, p = z, rz_old = r.z. Replacing r alone
    // would leave p and rz_old consistent with the discarded
    // recurrence; CG with such a mismatched direction can fall into a
    // limit cycle and never converge (observed under injected data
    // faults). A full restart makes the recompute equivalent to
    // restarted PCG, which converges from any finite state.
    prog.residual_recompute.push_back(
        Phase::Vector(MakeCopy(VecName::kP, VecName::kX)));
    prog.residual_recompute.push_back(Phase::Matrix(spmv_idx));
    prog.residual_recompute.push_back(Phase::Vector(
        MakeSub(VecName::kR, VecName::kB, VecName::kAp)));
    apply_precond(prog.residual_recompute);
    prog.residual_recompute.push_back(
        Phase::Vector(MakeCopy(VecName::kP, VecName::kZ)));
    prog.residual_recompute.push_back(Phase::Vector(
        MakeDot(ScalarReg::kRzOld, VecName::kR, VecName::kZ)));
    prog.residual_recompute.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    // ---- FLOP accounting --------------------------------------------------
    const double n = static_cast<double>(in.a->rows());
    prog.spmv_flops = SpMVFlops(*in.a);
    if (factored) {
        prog.sptrsv_flops = 2.0 * SpTRSVFlops(*in.l);
    }
    // 3 dots (2n each) + 3 elementwise updates (2n each) less
    // bookkeeping; kJacobi adds one n-FLOP scale.
    prog.vector_flops = 12.0 * n;
    if (in.precond == PreconditionerKind::kJacobi) {
        prog.vector_flops += n;
    }
    // Preconditioner application + copy (n) + two dots (2n each).
    prog.prologue_flops = prog.sptrsv_flops + 5.0 * n;
    // The cold prologue plus the true-residual SpMV, a staging copy
    // (n), and the subtraction (n).
    prog.warm_prologue_flops = prog.prologue_flops + prog.spmv_flops +
                               2.0 * n;
    // SpMV + preconditioner apply + two copies (n each) + sub (n) +
    // two dots (2n each).
    prog.recompute_flops = prog.spmv_flops + prog.sptrsv_flops + 7.0 * n;
    if (in.precond == PreconditionerKind::kJacobi) {
        prog.recompute_flops += n;
    }
    return prog;
}

} // namespace

const char*
SolverKindName(SolverKind kind)
{
    switch (kind) {
      case SolverKind::kPcg: return "pcg";
      case SolverKind::kJacobi: return "jacobi";
      case SolverKind::kBiCgStab: return "bicgstab";
    }
    return "unknown";
}

SolverProgram
BuildSolverProgram(SolverKind kind, const ProgramBuildInputs& in)
{
    AZUL_CHECK(in.a != nullptr);
    AZUL_CHECK(in.mapping != nullptr);
    switch (kind) {
      case SolverKind::kPcg:
        return BuildPcg(in);
      case SolverKind::kJacobi:
        return BuildJacobiSolverProgram(*in.a, *in.mapping, in.geom,
                                        in.jacobi_omega, in.graph);
      case SolverKind::kBiCgStab:
        return BuildBiCgStabProgram(*in.a, *in.mapping, in.geom,
                                    in.graph);
    }
    AZUL_CHECK_MSG(false, "unknown solver kind");
    return SolverProgram{};
}

SolverProgram
BuildJacobiSolverProgram(const CsrMatrix& a, const DataMapping& mapping,
                         const TorusGeometry& geom, double omega,
                         const GraphOptions& graph)
{
    AZUL_CHECK(geom.num_tiles() == mapping.num_tiles);
    AZUL_CHECK(omega > 0.0 && omega <= 1.0);
    SolverProgram prog;
    prog.geom = geom;
    prog.vec_tile = mapping.vec_tile;
    prog.matrix_kernels.push_back(
        BuildSpMVKernel(a, mapping.a_nnz_tile, mapping.vec_tile, geom,
                        VecName::kX, VecName::kAp, graph));
    prog.jacobi_inv_diag.resize(static_cast<std::size_t>(a.rows()));
    for (Index i = 0; i < a.rows(); ++i) {
        const double d = a.At(i, i);
        AZUL_CHECK_MSG(d != 0.0, "Jacobi: zero diagonal at " << i);
        prog.jacobi_inv_diag[static_cast<std::size_t>(i)] = 1.0 / d;
    }

    // Prologue: rr = b.b (r == b after LoadProblem with x = 0).
    prog.prologue.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    // Warm prologue: the SpMV kernel already reads kX, so the true
    // residual needs no staging copy: Ap = A x0; r = b - Ap; rr = r.r.
    prog.warm_prologue.push_back(Phase::Matrix(0));
    prog.warm_prologue.push_back(Phase::Vector(
        MakeSub(VecName::kR, VecName::kB, VecName::kAp)));
    prog.warm_prologue.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    // Iteration: Ap = A x; r = b - Ap; z = D^-1 r; x += omega z;
    // rr = r.r.
    prog.iteration.push_back(Phase::Matrix(0));
    prog.iteration.push_back(Phase::Vector(
        MakeSub(VecName::kR, VecName::kB, VecName::kAp)));
    prog.iteration.push_back(Phase::Vector(
        MakeDiagScale(VecName::kZ, VecName::kR)));
    prog.iteration.push_back(Phase::Vector(
        MakeAxpyConst(VecName::kX, omega, VecName::kZ)));
    prog.iteration.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    // True-residual recompute (the iteration's own residual path
    // without the x update): Ap = A x; r = b - Ap; rr = r.r.
    prog.residual_recompute.push_back(Phase::Matrix(0));
    prog.residual_recompute.push_back(Phase::Vector(
        MakeSub(VecName::kR, VecName::kB, VecName::kAp)));
    prog.residual_recompute.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    const double n = static_cast<double>(a.rows());
    prog.spmv_flops = SpMVFlops(a);
    prog.vector_flops = 7.0 * n; // sub + scale + axpy + dot
    prog.prologue_flops = 2.0 * n;  // one dot
    // True-residual SpMV + sub (n) + dot (2n).
    prog.warm_prologue_flops = prog.spmv_flops + 3.0 * n;
    prog.recompute_flops = prog.spmv_flops + 3.0 * n;
    return prog;
}

SolverProgram
BuildBiCgStabProgram(const CsrMatrix& a, const DataMapping& mapping,
                     const TorusGeometry& geom,
                     const GraphOptions& graph)
{
    AZUL_CHECK(geom.num_tiles() == mapping.num_tiles);
    SolverProgram prog;
    prog.geom = geom;
    prog.vec_tile = mapping.vec_tile;

    // Two SpMVs per iteration: v = A p and t = A s.
    prog.matrix_kernels.push_back(
        BuildSpMVKernel(a, mapping.a_nnz_tile, mapping.vec_tile, geom,
                        VecName::kP, VecName::kAp, graph));
    prog.matrix_kernels.push_back(
        BuildSpMVKernel(a, mapping.a_nnz_tile, mapping.vec_tile, geom,
                        VecName::kS, VecName::kT, graph));

    // ---- Prologue: r0 = r; p = r; rho_old = r0.r; rr = r.r --------------
    prog.prologue.push_back(
        Phase::Vector(MakeCopy(VecName::kR0, VecName::kR)));
    prog.prologue.push_back(
        Phase::Vector(MakeCopy(VecName::kP, VecName::kR)));
    prog.prologue.push_back(Phase::Vector(
        MakeDot(ScalarReg::kRzOld, VecName::kR0, VecName::kR)));
    prog.prologue.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    // ---- Warm prologue: r = b - A x0, then the cold prologue --------------
    // The true residual is staged through the second SpMV kernel
    // (input kS, output kT) exactly like residual_recompute; the
    // shadow-residual restart (r0, p, rho_old, rr) then matches the
    // cold prologue, making warm BiCGStab exactly a restart from x0.
    prog.warm_prologue.push_back(
        Phase::Vector(MakeCopy(VecName::kS, VecName::kX)));
    prog.warm_prologue.push_back(Phase::Matrix(1));
    prog.warm_prologue.push_back(Phase::Vector(
        MakeSub(VecName::kR, VecName::kB, VecName::kT)));
    prog.warm_prologue.push_back(
        Phase::Vector(MakeCopy(VecName::kR0, VecName::kR)));
    prog.warm_prologue.push_back(
        Phase::Vector(MakeCopy(VecName::kP, VecName::kR)));
    prog.warm_prologue.push_back(Phase::Vector(
        MakeDot(ScalarReg::kRzOld, VecName::kR0, VecName::kR)));
    prog.warm_prologue.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    // ---- Iteration --------------------------------------------------------
    // 1. v = A p
    prog.iteration.push_back(Phase::Matrix(0));
    // 2. alpha = rho_old / (r0 . v)
    {
        VectorKernel dot =
            MakeDot(ScalarReg::kPap, VecName::kR0, VecName::kAp);
        dot.post_divide = true;
        dot.div_num = ScalarReg::kRzOld;
        dot.div_out = ScalarReg::kAlpha;
        prog.iteration.push_back(Phase::Vector(dot));
    }
    // 3. s = r - alpha v
    prog.iteration.push_back(
        Phase::Vector(MakeCopy(VecName::kS, VecName::kR)));
    prog.iteration.push_back(Phase::Vector(
        MakeAxpy(VecName::kS, ScalarReg::kAlpha, VecName::kAp, -1.0)));
    // 4. t = A s
    prog.iteration.push_back(Phase::Matrix(1));
    // 5. omega = (t . s) / (t . t)
    prog.iteration.push_back(Phase::Vector(
        MakeDot(ScalarReg::kTmp, VecName::kT, VecName::kS)));
    {
        VectorKernel dot =
            MakeDot(ScalarReg::kPap, VecName::kT, VecName::kT);
        dot.post_divide = true;
        dot.div_num = ScalarReg::kTmp;
        dot.div_out = ScalarReg::kOmega; // (t.s) / (t.t)
        prog.iteration.push_back(Phase::Vector(dot));
    }
    // 6. x += alpha p + omega s
    prog.iteration.push_back(Phase::Vector(
        MakeAxpy(VecName::kX, ScalarReg::kAlpha, VecName::kP)));
    prog.iteration.push_back(Phase::Vector(
        MakeAxpy(VecName::kX, ScalarReg::kOmega, VecName::kS)));
    // 7. r = s - omega t
    prog.iteration.push_back(
        Phase::Vector(MakeCopy(VecName::kR, VecName::kS)));
    prog.iteration.push_back(Phase::Vector(
        MakeAxpy(VecName::kR, ScalarReg::kOmega, VecName::kT, -1.0)));
    // 8. rho_new = r0 . r; beta = (rho_new/rho_old)*(alpha/omega);
    //    rho_old = rho_new
    prog.iteration.push_back(Phase::Vector(
        MakeDot(ScalarReg::kRzNew, VecName::kR0, VecName::kR)));
    {
        ScalarOp beta;
        beta.kind = ScalarOp::Kind::kMulDiv;
        beta.out = ScalarReg::kBeta;
        beta.a = ScalarReg::kRzNew;
        beta.b = ScalarReg::kRzOld;
        beta.c = ScalarReg::kAlpha;
        beta.d = ScalarReg::kOmega;
        prog.iteration.push_back(Phase::Scalar(beta));
        ScalarOp rot;
        rot.kind = ScalarOp::Kind::kCopy;
        rot.out = ScalarReg::kRzOld;
        rot.a = ScalarReg::kRzNew;
        prog.iteration.push_back(Phase::Scalar(rot));
    }
    // 9. p = r + beta (p - omega v)
    prog.iteration.push_back(Phase::Vector(
        MakeAxpy(VecName::kP, ScalarReg::kOmega, VecName::kAp, -1.0)));
    prog.iteration.push_back(Phase::Vector(
        MakeXpby(VecName::kP, VecName::kR, ScalarReg::kBeta)));
    // 10. rr = r . r
    prog.iteration.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    // ---- True-residual recompute (residual replacement) -------------------
    // Uses the second SpMV kernel (input kS, output kT); both are
    // dead across iteration boundaries, so nothing needs restoring.
    prog.residual_recompute.push_back(
        Phase::Vector(MakeCopy(VecName::kS, VecName::kX)));
    prog.residual_recompute.push_back(Phase::Matrix(1));
    prog.residual_recompute.push_back(Phase::Vector(
        MakeSub(VecName::kR, VecName::kB, VecName::kT)));
    prog.residual_recompute.push_back(
        Phase::Vector(MakeDot(ScalarReg::kRr, VecName::kR, VecName::kR)));

    const double n = static_cast<double>(a.rows());
    prog.spmv_flops = 2.0 * SpMVFlops(a);
    prog.vector_flops = 22.0 * n;
    prog.prologue_flops = 6.0 * n; // two copies + two dots
    // The cold prologue plus the true-residual SpMV, its staging copy
    // (n), and the subtraction (n).
    prog.warm_prologue_flops = prog.prologue_flops + SpMVFlops(a) + 2.0 * n;
    // One SpMV + copy (n) + sub (n) + dot (2n).
    prog.recompute_flops = SpMVFlops(a) + 4.0 * n;
    return prog;
}

} // namespace azul
