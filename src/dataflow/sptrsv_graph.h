/**
 * @file
 * SpTRSV kernel compilation: forward solve L t = r and backward solve
 * L^T z = t, both from L's storage and placement. Multicasts carry
 * solved variables; reductions end in solve actions at each variable's
 * home tile (Sec IV-A, V-A).
 */
#ifndef AZUL_DATAFLOW_SPTRSV_GRAPH_H_
#define AZUL_DATAFLOW_SPTRSV_GRAPH_H_

#include "dataflow/spmv_graph.h"
#include "mapping/mapping.h"
#include "sparse/csr.h"

namespace azul {

/**
 * Compiles the forward solve out_vec = L^{-1} rhs_vec.
 *
 * @param l        lower-triangular factor (with nonzero diagonal).
 * @param nnz_tile tile of each L nonzero (CSR order).
 * @param vec_tile home tile of each vector slot.
 */
MatrixKernel BuildSpTRSVForwardKernel(
    const CsrMatrix& l, const std::vector<TileId>& nnz_tile,
    const std::vector<TileId>& vec_tile, const TorusGeometry& geom,
    VecName rhs_vec, VecName output_vec, const GraphOptions& opts = {});

/** Compiles the backward solve out_vec = L^{-T} rhs_vec. */
MatrixKernel BuildSpTRSVBackwardKernel(
    const CsrMatrix& l, const std::vector<TileId>& nnz_tile,
    const std::vector<TileId>& vec_tile, const TorusGeometry& geom,
    VecName rhs_vec, VecName output_vec, const GraphOptions& opts = {});

} // namespace azul

#endif // AZUL_DATAFLOW_SPTRSV_GRAPH_H_
