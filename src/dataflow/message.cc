#include "dataflow/message.h"

namespace azul {

std::string
OpKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::kFmac: return "Fmac";
      case OpKind::kAdd: return "Add";
      case OpKind::kMul: return "Mul";
      case OpKind::kSend: return "Send";
    }
    return "?";
}

std::string
VecNameStr(VecName v)
{
    switch (v) {
      case VecName::kX: return "x";
      case VecName::kR: return "r";
      case VecName::kP: return "p";
      case VecName::kZ: return "z";
      case VecName::kAp: return "Ap";
      case VecName::kT: return "t";
      case VecName::kB: return "b";
      case VecName::kR0: return "r0";
      case VecName::kS: return "s";
      case VecName::kCount: break;
    }
    return "?";
}

} // namespace azul
