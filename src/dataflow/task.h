/**
 * @file
 * Compiled kernel representation: the per-tile node/op/accumulator
 * tables that the cycle-level simulator interprets.
 *
 * A matrix kernel (SpMV or SpTRSV) compiles to, per tile:
 *
 *  - nodes: communication-tree vertices. A multicast node forwards an
 *    incoming value to child nodes and triggers a local column task (a
 *    run of FMAC ops — the paper's ScaleAndAccumCol). A reduce node
 *    accumulates `expected` contributions, then forwards the sum to
 *    its parent or executes a final action (write an output element,
 *    or solve an SpTRSV variable and fire its multicast).
 *
 *  - ops: flattened column-task bodies. Each op is one FMAC:
 *    accums[op.acc] += coeff * incoming_value.
 *
 *  - accums: per-row partial sums local to the tile. When an
 *    accumulator has received its expected number of updates it
 *    delivers its value to a reduce node (possibly on another tile).
 */
#ifndef AZUL_DATAFLOW_TASK_H_
#define AZUL_DATAFLOW_TASK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dataflow/message.h"
#include "util/common.h"

namespace azul {

/** Node id local to one tile's kernel table. */
using NodeId = std::int32_t;

/** Address of a node: (tile, node id within that tile). */
struct NodeRef {
    std::int32_t tile = -1;
    NodeId node = -1;

    bool valid() const { return tile >= 0; }
};

/** Node kinds. */
enum class NodeKind : std::uint8_t { kMulticast, kReduce };

/** What a reduce node does once all contributions arrived. */
enum class FinalAction : std::uint8_t {
    kNone,        //!< interior node: forward to parent
    kWriteOutput, //!< out_vec[slot] = rhs? + acc (SpMV result row)
    kSolve,       //!< x = (rhs[slot] - acc) * inv_diag; fire trigger
};

/** One communication-tree vertex on a tile. */
struct NodeDesc {
    NodeKind kind = NodeKind::kMulticast;

    /** Multicast: children to forward the value to. */
    std::vector<NodeRef> children;
    /** Multicast: local column task (FMACs) triggered on delivery. */
    std::int32_t first_op = 0;
    std::int32_t num_ops = 0;
    /** Multicast root: vector slot whose value seeds the tree (for
     *  kernel-start sends); -1 if triggered by a solve. */
    Index source_slot = -1;

    /** Reduce: contributions to await before completing. */
    std::int32_t expected = 0;
    /** Reduce: start of this node's contribution-staging range in the
     *  tile's fold buffer (node_stage_size doubles total). Completed
     *  nodes fold their `expected` staged values in ordinal order, so
     *  the FP64 sum is independent of message arrival order. */
    std::int32_t stage_offset = 0;
    /** Reduce: parent to forward the sum to (invalid at the root). */
    NodeRef parent;
    /** Ordinal of this node's contribution at its parent. */
    std::int32_t parent_ord = 0;
    /** Reduce root: what to do on completion. */
    FinalAction final_action = FinalAction::kNone;
    /** Reduce root: global vector index written / solved. */
    Index slot = -1;
    /** Reduce root (kSolve): same-tile multicast node to fire. */
    NodeId trigger_node = -1;
};

/** One FMAC of a column task: accums[acc] += coeff * value. */
struct ColumnOp {
    std::int32_t acc = 0;
    double coeff = 0.0;
    /** Ordinal of this op's product within accums[acc]'s fold. */
    std::int32_t acc_ord = 0;
};

/** Per-row partial sum local to a tile. */
struct AccumDesc {
    std::int32_t expected = 0; //!< FMAC updates before delivery
    NodeRef dest;              //!< reduce node receiving the partial
    /** Ordinal of the delivered partial at the dest reduce node. */
    std::int32_t dest_ord = 0;
    /** Start of this accumulator's staging range in the tile's fold
     *  buffer (acc_stage_size doubles total); see NodeDesc. */
    std::int32_t stage_offset = 0;
};

/** All kernel state of one tile. */
struct TileKernel {
    std::vector<NodeDesc> nodes;
    std::vector<ColumnOp> ops;
    std::vector<AccumDesc> accums;
    /** Nodes fired at kernel start: multicast roots with a source
     *  slot, and reduce roots whose expected count is zero. */
    std::vector<NodeId> initial_nodes;
    /** Fold-buffer sizes: sums of accums[].expected / nodes[].expected
     *  (assigned with the stage offsets in BuildMatrixKernel's
     *  fold-order finalize pass, kernel_builder.cc). */
    std::int32_t acc_stage_size = 0;
    std::int32_t node_stage_size = 0;
};

/** Kernel classes for statistics (Fig 22 categories). */
enum class KernelClass : std::uint8_t {
    kSpMV,
    kSpTRSVForward,
    kSpTRSVBackward,
    kVectorOp,
};

/** A compiled matrix kernel: one SpMV or one triangular solve. */
struct MatrixKernel {
    std::string name;
    KernelClass kclass = KernelClass::kSpMV;
    VecName input_vec = VecName::kP;   //!< multicast source values
    VecName rhs_vec = VecName::kCount; //!< reduce rhs (SpTRSV only)
    VecName output_vec = VecName::kAp; //!< result vector
    std::vector<TileKernel> tiles;
    /** 1/diag per vector index for kSolve roots (empty for SpMV);
     *  conceptually stored at each slot's home tile (the paper stores
     *  diagonals as reciprocals to avoid critical-path divides). */
    std::vector<double> inv_diag;
    double flops = 0.0; //!< nominal FLOP count of one execution

    /** Structural sanity checks (node/op/accum cross-references). */
    void Validate() const;
};

} // namespace azul

#endif // AZUL_DATAFLOW_TASK_H_
