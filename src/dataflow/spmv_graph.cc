#include "dataflow/spmv_graph.h"

#include "solver/spmv.h"

namespace azul {

MatrixKernel
BuildSpMVKernel(const CsrMatrix& a, const std::vector<TileId>& nnz_tile,
                const std::vector<TileId>& vec_tile,
                const TorusGeometry& geom, VecName input_vec,
                VecName output_vec, const GraphOptions& opts)
{
    AZUL_CHECK(static_cast<Index>(nnz_tile.size()) == a.nnz());
    AZUL_CHECK(static_cast<Index>(vec_tile.size()) == a.rows());
    AZUL_CHECK(a.rows() == a.cols());

    std::vector<PatternOp> ops;
    ops.reserve(static_cast<std::size_t>(a.nnz()));
    for (Index r = 0; r < a.rows(); ++r) {
        for (Index k = a.RowBegin(r); k < a.RowEnd(r); ++k) {
            ops.push_back({r, a.col_idx()[k], a.vals()[k],
                           nnz_tile[static_cast<std::size_t>(k)]});
        }
    }

    KernelBuildSpec spec;
    spec.name = "spmv:" + VecNameStr(output_vec) + "=A*" +
                VecNameStr(input_vec);
    spec.kclass = KernelClass::kSpMV;
    spec.input_vec = input_vec;
    spec.output_vec = output_vec;
    spec.n = a.rows();
    spec.vec_tile = &vec_tile;
    spec.triggered = false;
    spec.use_trees = opts.use_trees;
    spec.flops = SpMVFlops(a);
    return BuildMatrixKernel(geom, ops, std::move(spec));
}

} // namespace azul
