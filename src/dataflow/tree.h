/**
 * @file
 * Multicast/reduction tree construction on the 2-D torus (Sec IV-D,
 * Fig 18). Trees are dimension-ordered: the root reaches the branch
 * tile in each participating column by chaining along its own row
 * (east and west, shortest wrap direction), and each branch tile
 * chains through its column's members north and south. Chaining means
 * one message serves many destinations, avoiding both redundant link
 * traffic and long serialized send loops at the root.
 *
 * Reduction trees are the same topology reversed.
 */
#ifndef AZUL_DATAFLOW_TREE_H_
#define AZUL_DATAFLOW_TREE_H_

#include <cstdint>
#include <vector>

#include "util/common.h"

namespace azul {

/**
 * 2-D grid geometry helper shared by the compiler and simulator.
 * The paper's machine is a torus (wraparound links, Sec V-B); a plain
 * mesh (no wraparound, Cerebras-style) is available as an ablation
 * via `wrap = false`.
 */
struct TorusGeometry {
    std::int32_t width = 1;
    std::int32_t height = 1;
    bool wrap = true; //!< torus (paper default) vs mesh

    std::int32_t num_tiles() const { return width * height; }
    std::int32_t XOf(std::int32_t tile) const { return tile % width; }
    std::int32_t YOf(std::int32_t tile) const { return tile / width; }
    std::int32_t
    TileAt(std::int32_t x, std::int32_t y) const
    {
        return y * width + x;
    }

    /** Signed shortest wrap offset from a to b along one dimension of
     *  size `dim` (ties broken toward positive). */
    static std::int32_t WrapDelta(std::int32_t a, std::int32_t b,
                                  std::int32_t dim);

    /** Signed offset from a to b along one dimension, honoring the
     *  wrap setting. */
    std::int32_t
    Delta(std::int32_t a, std::int32_t b, std::int32_t dim) const
    {
        return wrap ? WrapDelta(a, b, dim) : b - a;
    }

    /** Shortest-path hop count between two tiles. */
    std::int32_t HopDistance(std::int32_t a, std::int32_t b) const;
};

/**
 * A communication tree: tiles[0] is the root; parent[i] indexes into
 * tiles (parent[0] == -1). For a multicast, values flow root→leaves;
 * for a reduction, leaves→root.
 */
struct TreeTopology {
    std::vector<std::int32_t> tiles;
    std::vector<std::int32_t> parent;

    std::size_t size() const { return tiles.size(); }

    /** Children lists (index-into-tiles), derived on demand. */
    std::vector<std::vector<std::int32_t>> Children() const;

    /** Tree depth in edges (0 for a single-node tree). */
    std::int32_t Depth() const;

    /** Total hop count of all tree edges under the geometry. */
    std::int64_t TotalHops(const TorusGeometry& geom) const;
};

/**
 * Builds a dimension-ordered chained tree rooted at `root` spanning
 * `members` (duplicates and the root itself are tolerated). With
 * use_tree == false, returns a star: every member parented directly
 * to the root (the paper's point-to-point baseline).
 */
TreeTopology BuildTorusTree(const TorusGeometry& geom, std::int32_t root,
                            std::vector<std::int32_t> members,
                            bool use_tree = true);

} // namespace azul

#endif // AZUL_DATAFLOW_TREE_H_
