#include "dataflow/tree.h"

#include <algorithm>
#include <cstdlib>
#include <map>

namespace azul {

std::int32_t
TorusGeometry::WrapDelta(std::int32_t a, std::int32_t b, std::int32_t dim)
{
    std::int32_t d = b - a;
    if (d > dim / 2) {
        d -= dim;
    } else if (d < -(dim - 1) / 2) {
        d += dim;
    }
    return d;
}

std::int32_t
TorusGeometry::HopDistance(std::int32_t a, std::int32_t b) const
{
    return std::abs(Delta(XOf(a), XOf(b), width)) +
           std::abs(Delta(YOf(a), YOf(b), height));
}

std::vector<std::vector<std::int32_t>>
TreeTopology::Children() const
{
    std::vector<std::vector<std::int32_t>> children(tiles.size());
    for (std::size_t i = 1; i < tiles.size(); ++i) {
        children[static_cast<std::size_t>(parent[i])].push_back(
            static_cast<std::int32_t>(i));
    }
    return children;
}

std::int32_t
TreeTopology::Depth() const
{
    std::vector<std::int32_t> depth(tiles.size(), 0);
    std::int32_t max_depth = 0;
    // parents always precede children in construction order
    for (std::size_t i = 1; i < tiles.size(); ++i) {
        depth[i] = depth[static_cast<std::size_t>(parent[i])] + 1;
        max_depth = std::max(max_depth, depth[i]);
    }
    return max_depth;
}

std::int64_t
TreeTopology::TotalHops(const TorusGeometry& geom) const
{
    std::int64_t hops = 0;
    for (std::size_t i = 1; i < tiles.size(); ++i) {
        hops += geom.HopDistance(
            tiles[static_cast<std::size_t>(parent[i])], tiles[i]);
    }
    return hops;
}

TreeTopology
BuildTorusTree(const TorusGeometry& geom, std::int32_t root,
               std::vector<std::int32_t> members, bool use_tree)
{
    AZUL_CHECK(root >= 0 && root < geom.num_tiles());
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()),
                  members.end());
    members.erase(std::remove(members.begin(), members.end(), root),
                  members.end());

    TreeTopology tree;
    tree.tiles.push_back(root);
    tree.parent.push_back(-1);

    if (!use_tree) {
        for (std::int32_t m : members) {
            tree.tiles.push_back(m);
            tree.parent.push_back(0);
        }
        return tree;
    }

    // Group members by column.
    std::map<std::int32_t, std::vector<std::int32_t>> by_column;
    for (std::int32_t m : members) {
        by_column[geom.XOf(m)].push_back(m);
    }

    const std::int32_t root_x = geom.XOf(root);
    const std::int32_t root_y = geom.YOf(root);

    // Chain branch tiles along the root's row, east and west.
    // Columns are sorted by signed wrap offset from the root column.
    std::vector<std::pair<std::int32_t, std::int32_t>> col_offsets;
    for (const auto& [x, tiles_in_col] : by_column) {
        (void)tiles_in_col;
        col_offsets.emplace_back(
            geom.Delta(root_x, x, geom.width), x);
    }
    std::sort(col_offsets.begin(), col_offsets.end());

    // index-into-tree of the branch node of each column.
    std::map<std::int32_t, std::int32_t> branch_node_of_col;
    branch_node_of_col[root_x] = 0;

    const auto add_node = [&tree](std::int32_t tile,
                                  std::int32_t parent_idx) {
        tree.tiles.push_back(tile);
        tree.parent.push_back(parent_idx);
        return static_cast<std::int32_t>(tree.tiles.size() - 1);
    };

    // Eastward chain (positive offsets, ascending).
    std::int32_t prev = 0;
    for (const auto& [off, x] : col_offsets) {
        if (off <= 0) {
            continue;
        }
        const std::int32_t branch_tile = geom.TileAt(x, root_y);
        prev = add_node(branch_tile, prev);
        branch_node_of_col[x] = prev;
    }
    // Westward chain (negative offsets, descending toward the west).
    prev = 0;
    for (auto it = col_offsets.rbegin(); it != col_offsets.rend(); ++it) {
        if (it->first >= 0) {
            continue;
        }
        const std::int32_t branch_tile = geom.TileAt(it->second, root_y);
        prev = add_node(branch_tile, prev);
        branch_node_of_col[it->second] = prev;
    }

    // Within each column: chain members north and south of the branch
    // row, nearest first.
    for (auto& [x, tiles_in_col] : by_column) {
        const std::int32_t branch_idx = branch_node_of_col.at(x);
        const std::int32_t branch_tile = tree.tiles[static_cast<
            std::size_t>(branch_idx)];
        // The branch tile itself may be a member; it is already a
        // node, so just skip it in the chains.
        std::vector<std::pair<std::int32_t, std::int32_t>> offs;
        for (std::int32_t m : tiles_in_col) {
            if (m == branch_tile) {
                continue;
            }
            offs.emplace_back(geom.Delta(geom.YOf(branch_tile),
                                         geom.YOf(m), geom.height),
                              m);
        }
        std::sort(offs.begin(), offs.end());
        // Southward (positive y-offset) chain, ascending.
        std::int32_t prev_idx = branch_idx;
        for (const auto& [off, m] : offs) {
            if (off <= 0) {
                continue;
            }
            prev_idx = add_node(m, prev_idx);
        }
        // Northward chain, descending.
        prev_idx = branch_idx;
        for (auto it = offs.rbegin(); it != offs.rend(); ++it) {
            if (it->first >= 0) {
                continue;
            }
            prev_idx = add_node(it->second, prev_idx);
        }
    }
    return tree;
}

} // namespace azul
