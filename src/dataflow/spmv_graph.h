/**
 * @file
 * SpMV kernel compilation: y = A * v with A's nonzeros and the vector
 * homes placed by a DataMapping (the worked example of Sec IV-A,
 * Figs 12-15).
 */
#ifndef AZUL_DATAFLOW_SPMV_GRAPH_H_
#define AZUL_DATAFLOW_SPMV_GRAPH_H_

#include "dataflow/kernel_builder.h"
#include "mapping/mapping.h"
#include "sparse/csr.h"

namespace azul {

/** Options shared by the kernel compilers. */
struct GraphOptions {
    bool use_trees = true; //!< chained trees vs point-to-point
};

/**
 * Compiles the SpMV kernel out_vec = A * input_vec.
 *
 * @param a        system matrix.
 * @param nnz_tile tile of each A nonzero (CSR order).
 * @param vec_tile home tile of each vector slot.
 */
MatrixKernel BuildSpMVKernel(const CsrMatrix& a,
                             const std::vector<TileId>& nnz_tile,
                             const std::vector<TileId>& vec_tile,
                             const TorusGeometry& geom,
                             VecName input_vec, VecName output_vec,
                             const GraphOptions& opts = {});

} // namespace azul

#endif // AZUL_DATAFLOW_SPMV_GRAPH_H_
