#include "dataflow/task.h"

namespace azul {

void
MatrixKernel::Validate() const
{
    const auto num_tiles = static_cast<std::int32_t>(tiles.size());
    const auto check_ref = [&](const NodeRef& ref) {
        AZUL_CHECK(ref.tile >= 0 && ref.tile < num_tiles);
        const auto& tk = tiles[static_cast<std::size_t>(ref.tile)];
        AZUL_CHECK(ref.node >= 0 &&
                   ref.node < static_cast<NodeId>(tk.nodes.size()));
    };
    for (std::int32_t t = 0; t < num_tiles; ++t) {
        const TileKernel& tk = tiles[static_cast<std::size_t>(t)];
        for (const NodeDesc& node : tk.nodes) {
            if (node.kind == NodeKind::kMulticast) {
                for (const NodeRef& child : node.children) {
                    check_ref(child);
                }
                AZUL_CHECK(node.first_op >= 0);
                AZUL_CHECK(node.first_op + node.num_ops <=
                           static_cast<std::int32_t>(tk.ops.size()));
            } else {
                if (node.parent.valid()) {
                    check_ref(node.parent);
                    AZUL_CHECK(node.final_action == FinalAction::kNone);
                } else {
                    AZUL_CHECK(node.final_action != FinalAction::kNone);
                }
                if (node.trigger_node != -1) {
                    AZUL_CHECK(
                        node.trigger_node >= 0 &&
                        node.trigger_node <
                            static_cast<NodeId>(tk.nodes.size()));
                }
            }
        }
        for (const ColumnOp& op : tk.ops) {
            AZUL_CHECK(op.acc >= 0 &&
                       op.acc <
                           static_cast<std::int32_t>(tk.accums.size()));
        }
        for (const AccumDesc& acc : tk.accums) {
            AZUL_CHECK(acc.expected > 0);
            check_ref(acc.dest);
        }
        for (NodeId n : tk.initial_nodes) {
            AZUL_CHECK(n >= 0 &&
                       n < static_cast<NodeId>(tk.nodes.size()));
        }
    }
}

} // namespace azul
