#include "dataflow/kernel_builder.h"

#include <algorithm>
#include <unordered_map>

namespace azul {

namespace {

/** Per-(tile, index) grouping of ops, with CSR-style layout. */
struct Grouping {
    /** Sorted unique (tile, index) keys. */
    std::vector<std::pair<TileId, Index>> keys;
    /** Op positions (into the original op array) per key, CSR style. */
    std::vector<Index> ptr;
    std::vector<Index> op_pos;

    /** Tiles participating for each index (ascending-tile order),
     *  indexed by the vector index itself so iteration order never
     *  depends on hashing. */
    std::vector<std::vector<TileId>> tiles_of_index;
};

Grouping
GroupBy(const std::vector<PatternOp>& ops, bool by_in, Index n)
{
    Grouping g;
    g.tiles_of_index.resize(static_cast<std::size_t>(n));
    std::vector<Index> order(ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
        order[i] = static_cast<Index>(i);
    }
    const auto key_of = [&ops, by_in](Index pos) {
        const PatternOp& op = ops[static_cast<std::size_t>(pos)];
        return std::make_pair(op.tile, by_in ? op.in : op.out);
    };
    std::sort(order.begin(), order.end(), [&key_of](Index a, Index b) {
        return key_of(a) < key_of(b);
    });
    g.op_pos = std::move(order);
    g.ptr.push_back(0);
    for (std::size_t i = 0; i < g.op_pos.size(); ++i) {
        const auto key = key_of(g.op_pos[i]);
        if (g.keys.empty() || g.keys.back() != key) {
            if (!g.keys.empty()) {
                g.ptr.push_back(static_cast<Index>(i));
            }
            g.keys.push_back(key);
            g.tiles_of_index[static_cast<std::size_t>(key.second)]
                .push_back(key.first);
        }
    }
    g.ptr.push_back(static_cast<Index>(g.op_pos.size()));
    return g;
}

} // namespace

MatrixKernel
BuildMatrixKernel(const TorusGeometry& geom,
                  const std::vector<PatternOp>& ops, KernelBuildSpec spec)
{
    AZUL_CHECK(spec.vec_tile != nullptr);
    AZUL_CHECK(static_cast<Index>(spec.vec_tile->size()) == spec.n);
    const std::vector<TileId>& vec_tile = *spec.vec_tile;
    const std::int32_t num_tiles = geom.num_tiles();
    for (const PatternOp& op : ops) {
        AZUL_CHECK(op.tile >= 0 && op.tile < num_tiles);
        AZUL_CHECK(op.out >= 0 && op.out < spec.n);
        AZUL_CHECK(op.in >= 0 && op.in < spec.n);
    }

    MatrixKernel kernel;
    kernel.name = std::move(spec.name);
    kernel.kclass = spec.kclass;
    kernel.input_vec = spec.input_vec;
    kernel.rhs_vec = spec.rhs_vec;
    kernel.output_vec = spec.output_vec;
    kernel.inv_diag = std::move(spec.inv_diag);
    kernel.flops = spec.flops;
    kernel.tiles.resize(static_cast<std::size_t>(num_tiles));

    const auto new_node = [&kernel](TileId tile) {
        TileKernel& tk = kernel.tiles[static_cast<std::size_t>(tile)];
        tk.nodes.emplace_back();
        return NodeRef{tile,
                       static_cast<NodeId>(tk.nodes.size() - 1)};
    };
    const auto node_at = [&kernel](const NodeRef& ref) -> NodeDesc& {
        return kernel.tiles[static_cast<std::size_t>(ref.tile)]
            .nodes[static_cast<std::size_t>(ref.node)];
    };

    // ---- Accumulators (per tile, per output index) ------------------------
    const Grouping by_out = GroupBy(ops, /*by_in=*/false, spec.n);
    // (tile, out) -> local accumulator id.
    std::unordered_map<std::int64_t, std::int32_t> acc_of;
    const auto acc_key = [&](TileId t, Index out) {
        return static_cast<std::int64_t>(t) * spec.n + out;
    };
    for (std::size_t k = 0; k < by_out.keys.size(); ++k) {
        const auto [tile, out] = by_out.keys[k];
        TileKernel& tk = kernel.tiles[static_cast<std::size_t>(tile)];
        acc_of[acc_key(tile, out)] =
            static_cast<std::int32_t>(tk.accums.size());
        AccumDesc acc;
        acc.expected = static_cast<std::int32_t>(
            by_out.ptr[k + 1] - by_out.ptr[k]);
        tk.accums.push_back(acc);
    }

    // ---- Reduction trees (one per output index with participants) --------
    // Root NodeRef per output index (for SpTRSV trigger wiring later).
    std::vector<NodeRef> reduce_root(static_cast<std::size_t>(spec.n));
    for (Index i = 0; i < spec.n; ++i) {
        const auto& participants =
            by_out.tiles_of_index[static_cast<std::size_t>(i)];
        const bool has_participants = !participants.empty();
        const TileId root_tile = vec_tile[static_cast<std::size_t>(i)];
        std::vector<std::int32_t> members;
        if (has_participants) {
            members.assign(participants.begin(), participants.end());
        }
        if (!has_participants && !spec.triggered) {
            // SpMV output with no contributions: nothing to do.
            continue;
        }
        const TreeTopology tree =
            BuildTorusTree(geom, root_tile, members, spec.use_trees);
        // Create a reduce node per tree tile; parents precede children
        // in `tree`, so wire child -> parent as we go.
        std::vector<NodeRef> refs(tree.size());
        for (std::size_t ti = 0; ti < tree.size(); ++ti) {
            refs[ti] = new_node(tree.tiles[ti]);
            NodeDesc& node = node_at(refs[ti]);
            node.kind = NodeKind::kReduce;
            if (ti == 0) {
                node.final_action = spec.triggered
                                        ? FinalAction::kSolve
                                        : FinalAction::kWriteOutput;
                node.slot = i;
            } else {
                node.parent = refs[static_cast<std::size_t>(
                    tree.parent[ti])];
                // The contribution ordinal is the parent's expected
                // count before the bump: tree children are wired in
                // deterministic build order, so ordinals are a fixed
                // property of the compiled kernel (the fold-order
                // contract both engines share).
                NodeDesc& parent = node_at(node.parent);
                node.parent_ord = parent.expected;
                ++parent.expected;
            }
        }
        reduce_root[static_cast<std::size_t>(i)] = refs[0];
        // Wire local accumulators into their tile's reduce node and
        // bump expectations.
        for (std::size_t ti = 0; ti < tree.size(); ++ti) {
            const auto ait =
                acc_of.find(acc_key(tree.tiles[ti], i));
            if (ait != acc_of.end()) {
                TileKernel& tk = kernel.tiles[static_cast<std::size_t>(
                    tree.tiles[ti])];
                AccumDesc& acc =
                    tk.accums[static_cast<std::size_t>(ait->second)];
                acc.dest = refs[ti];
                NodeDesc& node = node_at(refs[ti]);
                acc.dest_ord = node.expected;
                ++node.expected;
            }
        }
        // Reduce roots that expect nothing fire at kernel start
        // (SpTRSV rows with no dependencies).
        if (node_at(refs[0]).expected == 0) {
            kernel.tiles[static_cast<std::size_t>(refs[0].tile)]
                .initial_nodes.push_back(refs[0].node);
        }
    }

    // ---- Column tasks + multicast trees ----------------------------------
    const Grouping by_in = GroupBy(ops, /*by_in=*/true, spec.n);
    // Copy ops into per-tile arrays and record each group's range.
    struct GroupRange {
        std::int32_t first_op = 0;
        std::int32_t num_ops = 0;
    };
    std::unordered_map<std::int64_t, GroupRange> range_of; // (tile,in)
    for (std::size_t k = 0; k < by_in.keys.size(); ++k) {
        const auto [tile, in] = by_in.keys[k];
        TileKernel& tk = kernel.tiles[static_cast<std::size_t>(tile)];
        GroupRange range;
        range.first_op = static_cast<std::int32_t>(tk.ops.size());
        for (Index p = by_in.ptr[k]; p < by_in.ptr[k + 1]; ++p) {
            const PatternOp& op =
                ops[static_cast<std::size_t>(by_in.op_pos[p])];
            ColumnOp cop;
            cop.acc = acc_of.at(acc_key(tile, op.out));
            cop.coeff = op.coeff;
            tk.ops.push_back(cop);
        }
        range.num_ops = static_cast<std::int32_t>(tk.ops.size()) -
                        range.first_op;
        range_of[acc_key(tile, in)] = range;
    }

    for (Index j = 0; j < spec.n; ++j) {
        const auto& consumers =
            by_in.tiles_of_index[static_cast<std::size_t>(j)];
        const bool has_members = !consumers.empty();
        if (!has_members && !spec.triggered) {
            continue; // nobody consumes in[j]
        }
        const TileId root_tile = vec_tile[static_cast<std::size_t>(j)];
        std::vector<std::int32_t> members;
        if (has_members) {
            members.assign(consumers.begin(), consumers.end());
        }
        if (!has_members && spec.triggered) {
            // Solved variable consumed by nobody (last rows of the
            // solve): no multicast needed.
            continue;
        }
        const TreeTopology tree =
            BuildTorusTree(geom, root_tile, members, spec.use_trees);
        std::vector<NodeRef> refs(tree.size());
        for (std::size_t ti = 0; ti < tree.size(); ++ti) {
            refs[ti] = new_node(tree.tiles[ti]);
            NodeDesc& node = node_at(refs[ti]);
            node.kind = NodeKind::kMulticast;
            const auto rit = range_of.find(acc_key(tree.tiles[ti], j));
            if (rit != range_of.end()) {
                node.first_op = rit->second.first_op;
                node.num_ops = rit->second.num_ops;
            }
        }
        for (std::size_t ti = 0; ti < tree.size(); ++ti) {
            if (tree.parent[ti] >= 0) {
                node_at(refs[static_cast<std::size_t>(tree.parent[ti])])
                    .children.push_back(refs[ti]);
            }
        }
        if (spec.triggered) {
            // Fired by the solve of variable j (same tile by
            // construction: both root at vec_tile[j]).
            const NodeRef solver =
                reduce_root[static_cast<std::size_t>(j)];
            AZUL_CHECK(solver.valid());
            AZUL_CHECK(solver.tile == refs[0].tile);
            node_at(solver).trigger_node = refs[0].node;
        } else {
            // SpMV: seed from the input vector at kernel start.
            node_at(refs[0]).source_slot = j;
            kernel.tiles[static_cast<std::size_t>(refs[0].tile)]
                .initial_nodes.push_back(refs[0].node);
        }
    }

    // ---- Finalize the canonical fold order --------------------------------
    // Assign per-FMAC ordinals within each accumulator (ops are laid
    // out in deterministic build order) and prefix-sum the staging
    // ranges that both execution engines fold in.
    for (TileKernel& tk : kernel.tiles) {
        std::vector<std::int32_t> acc_count(tk.accums.size(), 0);
        for (ColumnOp& op : tk.ops) {
            op.acc_ord = acc_count[static_cast<std::size_t>(op.acc)]++;
        }
        std::int32_t acc_off = 0;
        for (AccumDesc& acc : tk.accums) {
            acc.stage_offset = acc_off;
            acc_off += acc.expected;
        }
        tk.acc_stage_size = acc_off;
        std::int32_t node_off = 0;
        for (NodeDesc& node : tk.nodes) {
            node.stage_offset = node_off;
            node_off += node.expected;
        }
        tk.node_stage_size = node_off;
    }

    kernel.Validate();
    return kernel;
}

} // namespace azul
