/**
 * @file
 * Vector-operation kernels of PCG (the "Vector Ops" of Fig 3/22):
 * elementwise updates over the distributed vector slots plus dot
 * products with a global scalar reduce-and-broadcast.
 *
 * Elementwise kernels touch only local data (all dense vectors of one
 * index share a home tile), so they need no compilation — the machine
 * sweeps each tile's slots. Dot products reduce local partials over a
 * machine-wide scalar tree and broadcast the results (and any derived
 * quotients, e.g. alpha and beta) back.
 */
#ifndef AZUL_DATAFLOW_VECTOR_OPS_GRAPH_H_
#define AZUL_DATAFLOW_VECTOR_OPS_GRAPH_H_

#include "dataflow/message.h"

namespace azul {

/** Vector kernel kinds. */
enum class VecOpKind : std::uint8_t {
    kAxpy,      //!< dst[i] += sign * reg * a[i]
    kXpby,      //!< dst[i] = a[i] + reg * dst[i]
    kCopy,      //!< dst[i] = a[i]
    kSub,       //!< dst[i] = a[i] - b[i]
    kDiagScale, //!< dst[i] = a[i] * inv_diag[i] (Jacobi apply)
    kScale,     //!< dst[i] = s * a[i] (or a[i] / s with scale_invert)
    kDotReduce, //!< reg = dot(a, b), with optional derived quotient
};

/**
 * One vector-op phase.
 *
 * Operands are named either by a `VecName` architectural vector or,
 * when the matching `*_bank` index is >= 0, by a slot of the
 * program's multi-vector register bank (the Krylov basis of
 * GMRES(m); see `SolverProgram::num_bank_vectors`). Bank vectors are
 * sharded across tiles exactly like named vectors. Scalars can
 * likewise come from / go to the broadcast scalar *bank*
 * (`scale_bank` / `dot_out_bank`), which holds the per-restart
 * Hessenberg entries the host least-squares epilogue consumes.
 */
struct VectorKernel {
    VecOpKind op = VecOpKind::kCopy;
    VecName dst = VecName::kX;
    VecName src_a = VecName::kX;
    VecName src_b = VecName::kX; //!< second dot operand

    /** Bank-slot overrides; -1 selects the named vector instead. */
    std::int32_t dst_bank = -1;
    std::int32_t src_a_bank = -1;
    std::int32_t src_b_bank = -1;

    ScalarReg scale_reg = ScalarReg::kAlpha; //!< axpy/xpby scale
    double scale_sign = 1.0;                 //!< -1 for r -= alpha*Ap
    /** When set, axpy/xpby use this compile-time constant instead of
     *  a scalar register (e.g. Jacobi's fixed damping omega). */
    bool use_const_scale = false;
    double const_scale = 1.0;
    /** When >= 0, the scale comes from this scalar-bank slot. */
    std::int32_t scale_bank = -1;
    /** kScale only: dst = a / s instead of s * a. A zero divisor
     *  writes 0 (the Arnoldi lucky-breakdown guard), so the compiled
     *  program never produces non-finite basis vectors. */
    bool scale_invert = false;

    // kDotReduce extras, applied at the reduction root then broadcast:
    /** Receives dot(a, b); kCount writes the scalar bank only. */
    ScalarReg dot_out = ScalarReg::kRr;
    /** When >= 0, the dot (after post_sqrt) also lands in this
     *  scalar-bank slot. */
    std::int32_t dot_out_bank = -1;
    bool post_sqrt = false;             //!< store sqrt(dot) (a norm)
    bool post_divide = false;           //!< compute a quotient too
    bool divide_dot_by_num = false;     //!< false: num/dot; true: dot/num
    ScalarReg div_num = ScalarReg::kRzOld;
    ScalarReg div_out = ScalarReg::kAlpha;
    bool copy_dot_to = false;           //!< also copy dot into a reg
    ScalarReg dot_copy_reg = ScalarReg::kRzOld;

    /** Human-readable description for traces. */
    std::string ToString() const;
};

// ---- Convenience constructors used by the PCG program builder -----------

/** dst += sign * reg * a. */
VectorKernel MakeAxpy(VecName dst, ScalarReg reg, VecName a,
                      double sign = 1.0);

/** dst = a + reg * dst. */
VectorKernel MakeXpby(VecName dst, VecName a, ScalarReg reg);

/** dst += s * a with a compile-time constant scale. */
VectorKernel MakeAxpyConst(VecName dst, double s, VecName a);

/** dst = a. */
VectorKernel MakeCopy(VecName dst, VecName a);

/** dst = a - b (elementwise). */
VectorKernel MakeSub(VecName dst, VecName a, VecName b);

/** dst = D^{-1} a (Jacobi apply; uses the program's inv-diag table). */
VectorKernel MakeDiagScale(VecName dst, VecName a);

/** reg = dot(a, b). */
VectorKernel MakeDot(ScalarReg reg, VecName a, VecName b);

/** dst = reg * a (or a / reg when `invert`; 0 divisor yields 0). */
VectorKernel MakeScale(VecName dst, ScalarReg reg, VecName a,
                       bool invert = false);

} // namespace azul

#endif // AZUL_DATAFLOW_VECTOR_OPS_GRAPH_H_
