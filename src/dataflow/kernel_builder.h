/**
 * @file
 * Generic matrix-kernel compiler. Both SpMV and SpTRSV reduce to the
 * same dataflow shape (Sec IV-A, V-A): a set of elementary operations
 * out[i] += coeff * in[j], each pinned to a tile by the data mapping,
 * glued together by per-column multicast trees and per-row reduction
 * trees. SpTRSV differs only in that column j's multicast fires when
 * variable j is solved (rather than at kernel start) and row
 * reductions end in a solve instead of a plain write.
 */
#ifndef AZUL_DATAFLOW_KERNEL_BUILDER_H_
#define AZUL_DATAFLOW_KERNEL_BUILDER_H_

#include <vector>

#include "dataflow/task.h"
#include "dataflow/tree.h"
#include "mapping/mapping.h"

namespace azul {

/** One elementary operation: out[out] += coeff * in[in], on `tile`. */
struct PatternOp {
    Index out = 0;
    Index in = 0;
    double coeff = 0.0;
    TileId tile = 0;
};

/** Builder inputs beyond the op list. */
struct KernelBuildSpec {
    std::string name;
    KernelClass kclass = KernelClass::kSpMV;
    VecName input_vec = VecName::kP;
    VecName rhs_vec = VecName::kCount;
    VecName output_vec = VecName::kAp;
    /** Number of vector indices n (slots are [0, n)). */
    Index n = 0;
    /** Home tile of each vector slot. */
    const std::vector<TileId>* vec_tile = nullptr;
    /** kSolve roots need 1/diag per index; empty for SpMV. */
    std::vector<double> inv_diag;
    /** True for SpTRSV-style triggered multicasts + solve roots. */
    bool triggered = false;
    /** False = point-to-point stars instead of chained trees. */
    bool use_trees = true;
    double flops = 0.0;
};

/**
 * Compiles the op list into per-tile node/op/accumulator tables.
 * See the file comment for the construction.
 */
MatrixKernel BuildMatrixKernel(const TorusGeometry& geom,
                               const std::vector<PatternOp>& ops,
                               KernelBuildSpec spec);

} // namespace azul

#endif // AZUL_DATAFLOW_KERNEL_BUILDER_H_
