#include "dataflow/sptrsv_graph.h"

#include "solver/sptrsv.h"
#include "sparse/triangle.h"

namespace azul {

namespace {

/** Extracts 1/diag of L, checking for zero diagonals. */
std::vector<double>
InverseDiagonal(const CsrMatrix& l)
{
    std::vector<double> inv(static_cast<std::size_t>(l.rows()));
    for (Index r = 0; r < l.rows(); ++r) {
        const double d = l.At(r, r);
        AZUL_CHECK_MSG(d != 0.0, "SpTRSV: zero diagonal at row " << r);
        inv[static_cast<std::size_t>(r)] = 1.0 / d;
    }
    return inv;
}

MatrixKernel
BuildSolveKernel(const CsrMatrix& l, const std::vector<TileId>& nnz_tile,
                 const std::vector<TileId>& vec_tile,
                 const TorusGeometry& geom, VecName rhs_vec,
                 VecName output_vec, const GraphOptions& opts,
                 bool transpose)
{
    AZUL_CHECK(static_cast<Index>(nnz_tile.size()) == l.nnz());
    AZUL_CHECK(static_cast<Index>(vec_tile.size()) == l.rows());
    AZUL_CHECK(l.rows() == l.cols());
    AZUL_CHECK_MSG(IsLowerTriangular(l),
                   "SpTRSV kernels require a lower-triangular factor");

    // Elementary op for L entry (r, c), c < r:
    //  forward:  acc[r] += L_rc * x[c]  (op out=r, in=c)
    //  backward: row c of L^T holds L_rc, so acc[c] += L_rc * x[r]
    //            (op out=c, in=r). Diagonal entries become the solve's
    //            reciprocal multiply and are not ops.
    std::vector<PatternOp> ops;
    ops.reserve(static_cast<std::size_t>(l.nnz() - l.rows()));
    for (Index r = 0; r < l.rows(); ++r) {
        for (Index k = l.RowBegin(r); k < l.RowEnd(r); ++k) {
            const Index c = l.col_idx()[k];
            if (c == r) {
                continue;
            }
            const TileId tile = nnz_tile[static_cast<std::size_t>(k)];
            if (!transpose) {
                ops.push_back({r, c, l.vals()[k], tile});
            } else {
                ops.push_back({c, r, l.vals()[k], tile});
            }
        }
    }

    KernelBuildSpec spec;
    spec.name = std::string(transpose ? "sptrsv-bwd:" : "sptrsv-fwd:") +
                VecNameStr(output_vec) + "=" +
                (transpose ? "L^-T " : "L^-1 ") + VecNameStr(rhs_vec);
    spec.kclass = transpose ? KernelClass::kSpTRSVBackward
                            : KernelClass::kSpTRSVForward;
    spec.input_vec = output_vec; // multicasts carry solved outputs
    spec.rhs_vec = rhs_vec;
    spec.output_vec = output_vec;
    spec.n = l.rows();
    spec.vec_tile = &vec_tile;
    spec.inv_diag = InverseDiagonal(l);
    spec.triggered = true;
    spec.use_trees = opts.use_trees;
    spec.flops = SpTRSVFlops(l);
    return BuildMatrixKernel(geom, ops, std::move(spec));
}

} // namespace

MatrixKernel
BuildSpTRSVForwardKernel(const CsrMatrix& l,
                         const std::vector<TileId>& nnz_tile,
                         const std::vector<TileId>& vec_tile,
                         const TorusGeometry& geom, VecName rhs_vec,
                         VecName output_vec, const GraphOptions& opts)
{
    return BuildSolveKernel(l, nnz_tile, vec_tile, geom, rhs_vec,
                            output_vec, opts, /*transpose=*/false);
}

MatrixKernel
BuildSpTRSVBackwardKernel(const CsrMatrix& l,
                          const std::vector<TileId>& nnz_tile,
                          const std::vector<TileId>& vec_tile,
                          const TorusGeometry& geom, VecName rhs_vec,
                          VecName output_vec, const GraphOptions& opts)
{
    return BuildSolveKernel(l, nnz_tile, vec_tile, geom, rhs_vec,
                            output_vec, opts, /*transpose=*/true);
}

} // namespace azul
