/**
 * @file
 * Message and operation primitives of Azul's dataflow execution model
 * (Sec IV-A). Kernels are graphs of tasks; tasks run on tiles and are
 * triggered by the arrival of messages. Each message is one 96-bit
 * flit: a 64-bit value plus 32 bits of metadata (here: a destination
 * node id local to the receiving tile).
 */
#ifndef AZUL_DATAFLOW_MESSAGE_H_
#define AZUL_DATAFLOW_MESSAGE_H_

#include <cstdint>
#include <string>

#include "util/common.h"

namespace azul {

/** Operation kinds executed by the PE (the Fig 21 categories). */
enum class OpKind : std::uint8_t { kFmac, kAdd, kMul, kSend };

/** Returns a printable op-kind name. */
std::string OpKindName(OpKind kind);

/** Dense vectors held distributed across tiles during PCG. */
enum class VecName : std::uint8_t {
    kX = 0,  //!< solution estimate
    kR,      //!< residual
    kP,      //!< search direction
    kZ,      //!< preconditioned residual
    kAp,     //!< SpMV output A*p
    kT,      //!< intermediate of the two-stage trisolve
    kB,      //!< right-hand side
    kR0,     //!< shadow residual (BiCGStab)
    kS,      //!< BiCGStab intermediate s
    kCount,
};

/** Returns a printable vector name. */
std::string VecNameStr(VecName v);

/** Scalar registers replicated on every tile (broadcast values). */
enum class ScalarReg : std::uint8_t {
    kAlpha = 0,
    kBeta,
    kRzOld,
    kRzNew,
    kPap,
    kRr,
    kOmega, //!< BiCGStab stabilization scalar
    kTmp,   //!< scratch (second dot of omega's quotient)
    kCount,
};

/** One in-flight message: a value heading to a node on a tile. */
struct Message {
    std::int32_t dest_tile = -1;
    std::int32_t dest_node = -1;
    double value = 0.0;
    /**
     * Contribution ordinal at the destination reduce node (see
     * NodeDesc::stage_offset): which statically-assigned slot of the
     * node's fold this value fills. Simulation bookkeeping only — it
     * is NOT part of the modeled 96-bit flit. Hardware accumulates in
     * arrival order; the simulator instead folds contributions in
     * static program order so FP64 results are independent of message
     * timing (the engines' shared determinism contract,
     * docs/SIMULATOR.md).
     */
    std::int32_t ord = 0;
};

} // namespace azul

#endif // AZUL_DATAFLOW_MESSAGE_H_
