/**
 * @file
 * Solver comparison (Table II territory): runs the host reference
 * implementations of CG, PCG (with each preconditioner), BiCGStab,
 * GMRES, and weighted Jacobi on one SPD system, then runs PCG and the
 * Jacobi solver on the simulated Azul machine — showing that all of
 * Table II's algorithms reduce to the SpMV/SpTRSV/vector kernels Azul
 * accelerates.
 */
#include <cstdio>

#include "core/azul_system.h"
#include "dataflow/program.h"
#include "solver/bicgstab.h"
#include "solver/cg.h"
#include "solver/gmres.h"
#include "solver/pcg.h"
#include "solver/spmv.h"
#include "sparse/generators.h"
#include "sparse/spy.h"
#include "util/logging.h"
#include "util/rng.h"

using namespace azul;

namespace {

void
Report(const char* name, const SolveResult& res)
{
    std::printf("%-24s %6lld iters  ||r||=%9.2e  %s  (%.1f MFLOP)\n",
                name, static_cast<long long>(res.iterations),
                res.residual_norm,
                res.converged ? "converged" : "  FAILED ",
                res.flops.total() / 1e6);
}

} // namespace

int
main()
{
    SetLogLevel(LogLevel::kWarn);
    const CsrMatrix a = RandomGeometricLaplacian(2000, 9.0, 13);
    Rng rng(3);
    Vector b(static_cast<std::size_t>(a.rows()));
    for (double& v : b) {
        v = rng.UniformDouble(-1.0, 1.0);
    }
    std::printf("system: n=%lld, nnz=%lld; sparsity pattern:\n\n%s\n",
                static_cast<long long>(a.rows()),
                static_cast<long long>(a.nnz()),
                AsciiSpyPlot(a, 48, 24).c_str());

    const double tol = 1e-8;
    const Index cap = 20000;

    std::printf("--- host reference solvers "
                "---------------------------------------------\n");
    Report("CG", ConjugateGradients(a, b, tol, cap));
    for (const auto kind : {PreconditionerKind::kJacobi,
                            PreconditionerKind::kSymmetricGaussSeidel,
                            PreconditionerKind::kIncompleteCholesky}) {
        const auto m = MakePreconditioner(kind, a);
        const std::string name =
            "PCG + " + PreconditionerKindName(kind);
        Report(name.c_str(), PreconditionedConjugateGradients(
                                 a, b, *m, tol, cap));
    }
    {
        const auto m = MakePreconditioner(
            PreconditionerKind::kIncompleteCholesky, a);
        Report("BiCGStab + ic0", BiCgStab(a, b, *m, tol, cap));
        Report("GMRES(30) + ic0", Gmres(a, b, *m, 30, tol, cap));
    }

    std::printf("\n--- simulated Azul accelerator "
                "-----------------------------------------\n");
    {
        AzulOptions opts;
        opts.sim.grid_width = 8;
        opts.sim.grid_height = 8;
        opts.spec.tol = tol;
        opts.spec.max_iters = cap;
        AzulSystem sys = *AzulSystem::Create(a, opts);
        const SolveReport rep = sys.Solve(b);
        std::printf("%-24s %s\n", "Azul PCG + ic0",
                    rep.Summary().c_str());
    }
    {
        // Weighted Jacobi needs strong diagonal dominance; reuse the
        // machine mapping infrastructure directly.
        const CsrMatrix easy = RandomSpd(2000, 4, 17);
        MappingProblem prob;
        prob.a = &easy;
        SimConfig cfg;
        cfg.grid_width = 8;
        cfg.grid_height = 8;
        const DataMapping mapping =
            MakeMapper(MapperKind::kAzul)->Map(prob, cfg.num_tiles());
        const SolverProgram prog = BuildJacobiSolverProgram(
            easy, mapping, cfg.geometry(), 2.0 / 3.0);
        Machine machine(cfg, &prog);
        Vector b2(static_cast<std::size_t>(easy.rows()), 1.0);
        const SolverRunResult run =
            SolverDriver().Run(machine, b2, tol, cap);
        std::printf("%-24s %lld iters, ||r||=%.2e, %s, %llu cycles\n",
                    "Azul weighted Jacobi",
                    static_cast<long long>(run.iterations),
                    run.residual_norm,
                    run.converged ? "converged" : "FAILED",
                    static_cast<unsigned long long>(run.stats.cycles));
    }
    return 0;
}
