/**
 * @file
 * Quickstart: build a sparse SPD system, solve it on the simulated
 * Azul accelerator, and compare against the reference CPU solver.
 *
 *   ./quickstart [path/to/matrix.mtx]
 *
 * Without an argument, a 2-D Laplacian is generated. With one, any
 * symmetric-positive-definite Matrix Market file is loaded.
 */
#include <cstdio>
#include <utility>

#include "core/azul_system.h"
#include "solver/pcg.h"
#include "solver/spmv.h"
#include "sparse/generators.h"
#include "sparse/matrix_market.h"
#include "sparse/matrix_stats.h"
#include "util/logging.h"

using namespace azul;

int
main(int argc, char** argv)
{
    SetLogLevel(LogLevel::kInfo);

    // 1. Obtain a sparse SPD matrix.
    CsrMatrix a;
    if (argc > 1) {
        std::printf("loading %s\n", argv[1]);
        a = CsrMatrix::FromCoo(ReadMatrixMarket(argv[1]));
    } else {
        a = Grid2dLaplacian(48, 48);
    }
    std::printf("matrix: %s\n",
                FormatMatrixStats(ComputeMatrixStats(a)).c_str());

    // 2. Configure the accelerator. Everything has sane defaults:
    //    16x16 tiles, IC(0)-preconditioned PCG, hypergraph mapping.
    AzulOptions options;
    options.sim.grid_width = 8;
    options.sim.grid_height = 8;
    options.spec.tol = 1e-8;

    // 3. Build the system: coloring, factorization, mapping, kernel
    //    compilation, engine instantiation. This is the expensive,
    //    once-per-sparsity-pattern step. Create validates the input
    //    and returns a Status instead of throwing.
    StatusOr<AzulSystem> built = AzulSystem::Create(a, options);
    if (!built.ok()) {
        std::fprintf(stderr, "%s\n",
                     built.status().ToString().c_str());
        return 1;
    }
    AzulSystem system = *std::move(built);
    std::printf("mapping took %.2f s; per-tile SRAM: %zu B data, "
                "%zu B accum\n",
                system.mapping_seconds(),
                system.sram_usage().max_data_bytes,
                system.sram_usage().max_accum_bytes);

    // 4. Solve A x = b on the simulated machine.
    Vector b(static_cast<std::size_t>(a.rows()), 1.0);
    b[0] = 10.0; // make it interesting
    const SolveReport report = system.Solve(b);
    std::printf("azul:      %s\n", report.Summary().c_str());

    // 5. Cross-check with the reference CPU solver.
    const auto precond = MakePreconditioner(
        PreconditionerKind::kIncompleteCholesky, a);
    const SolveResult ref =
        PreconditionedConjugateGradients(a, b, *precond, 1e-8, 1000);
    std::printf("reference: converged in %lld iters, ||r||=%.3g\n",
                static_cast<long long>(ref.iterations),
                ref.residual_norm);

    double max_err = 0.0;
    const Vector ax = SpMV(a, report.run.x);
    for (std::size_t i = 0; i < ax.size(); ++i) {
        max_err = std::max(max_err, std::abs(ax[i] - b[i]));
    }
    std::printf("max |Ax - b| of the accelerator's solution: %.3g\n",
                max_err);
    return max_err < 1e-5 ? 0 : 1;
}
