/**
 * @file
 * End-to-end physical-system simulation (Sec II-C of the paper):
 * implicit heat diffusion on a 2-D plate.
 *
 * Backward-Euler time stepping of du/dt = alpha * laplacian(u) gives
 * one linear solve per timestep:
 *
 *     (I + dt * alpha * L) u_next = u
 *
 * The system matrix A is static, so Azul's expensive preprocessing
 * (coloring, mapping, compilation) runs ONCE and every timestep costs
 * only a solve plus a cheap rhs update — exactly the amortization
 * argument of Sec II-C. A hot spot diffuses across the plate; the
 * example prints an ASCII heat map every few steps and the simulated
 * accelerator time per step.
 */
#include <cstdio>

#include "core/azul_system.h"
#include "sparse/generators.h"
#include "util/logging.h"

using namespace azul;

namespace {

constexpr Index kNx = 32;
constexpr Index kNy = 32;

/** Builds A = I + dt*alpha*L for the 2-D plate. */
CsrMatrix
HeatMatrix(double dt, double alpha)
{
    // Grid2dLaplacian returns L' = shift*I + L (diagonally dominant);
    // build from scratch for exact coefficients.
    const CsrMatrix lap = Grid2dLaplacian(kNx, kNy, /*shift=*/0.0);
    CsrMatrix a = lap;
    std::vector<double>& vals = a.mutable_vals();
    for (Index r = 0; r < a.rows(); ++r) {
        for (Index k = a.RowBegin(r); k < a.RowEnd(r); ++k) {
            vals[static_cast<std::size_t>(k)] *= dt * alpha;
            if (a.col_idx()[k] == r) {
                vals[static_cast<std::size_t>(k)] += 1.0; // + I
            }
        }
    }
    return a;
}

void
PrintHeatMap(const Vector& u)
{
    static const char* kShades = " .:-=+*#%@";
    for (Index y = 0; y < kNy; y += 2) {
        for (Index x = 0; x < kNx; ++x) {
            // Average two rows for a square-ish aspect ratio.
            const double v =
                0.5 * (u[static_cast<std::size_t>(y * kNx + x)] +
                       u[static_cast<std::size_t>(
                           std::min(y + 1, kNy - 1) * kNx + x)]);
            const int shade = std::min(
                9, static_cast<int>(v * 10.0));
            std::putchar(kShades[std::max(0, shade)]);
        }
        std::putchar('\n');
    }
}

} // namespace

int
main()
{
    SetLogLevel(LogLevel::kWarn);
    const double dt = 0.5;
    const double alpha = 0.2;
    const int timesteps = 24;

    // --- One-time setup: build the accelerator for this pattern. ---
    const CsrMatrix a = HeatMatrix(dt, alpha);
    AzulOptions options;
    options.sim.grid_width = 8;
    options.sim.grid_height = 8;
    options.spec.tol = 1e-9;
    // Generated input: a Create failure here is a bug, and value()
    // checks, so no explicit branch is needed.
    AzulSystem system = *AzulSystem::Create(a, options);
    std::printf("setup: mapping %.2fs (amortized across %d "
                "timesteps)\n\n",
                system.mapping_seconds(), timesteps);

    // --- Initial condition: hot spot in one quadrant. ---
    Vector u(static_cast<std::size_t>(kNx * kNy), 0.0);
    for (Index y = 6; y < 12; ++y) {
        for (Index x = 6; x < 12; ++x) {
            u[static_cast<std::size_t>(y * kNx + x)] = 1.0;
        }
    }

    double total_sim_seconds = 0.0;
    Index total_iterations = 0;
    for (int step = 0; step < timesteps; ++step) {
        // Solve (I + dt*alpha*L) u_next = u on the accelerator.
        const SolveReport report = system.Solve(u);
        if (!report.run.converged) {
            std::fprintf(stderr, "step %d did not converge\n", step);
            return 1;
        }
        u = report.run.x;
        total_sim_seconds += report.solve_seconds;
        total_iterations += report.run.iterations;
        if (step % 8 == 0) {
            std::printf("t = %.1f  (step %d: %lld PCG iters, %.1f us "
                        "simulated)\n",
                        dt * (step + 1), step,
                        static_cast<long long>(report.run.iterations),
                        report.solve_seconds * 1e6);
            PrintHeatMap(u);
            std::printf("\n");
        }
    }

    double heat = 0.0;
    for (double v : u) {
        heat += v;
    }
    std::printf("done: %d steps, %lld total PCG iterations, %.1f us "
                "total simulated accelerator time\n",
                timesteps, static_cast<long long>(total_iterations),
                total_sim_seconds * 1e6);
    std::printf("total heat (conserved up to boundary loss): %.3f\n",
                heat);
    return 0;
}
