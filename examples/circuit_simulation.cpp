/**
 * @file
 * Transient analysis of an RC ladder network — the circuit-simulation
 * motivation from the paper's introduction (Xyce taking 3.5 hours on
 * a 1.7M-nonzero SRAM netlist).
 *
 * A resistor mesh with capacitors to ground, driven by a step input,
 * is integrated with backward Euler. Each timestep solves
 *
 *     (G + C/dt) v_next = C/dt * v + i_src
 *
 * where G is the (SPD) conductance matrix of the resistor mesh and C
 * the diagonal capacitance matrix. The matrix is static; Azul's
 * UpdateValues path is also demonstrated by switching one resistor
 * bank mid-simulation (same sparsity pattern, new values).
 */
#include <cstdio>

#include "core/azul_system.h"
#include "sparse/generators.h"
#include "util/logging.h"
#include "util/rng.h"

using namespace azul;

namespace {

constexpr Index kNodesX = 24;
constexpr Index kNodesY = 24;
constexpr Index kN = kNodesX * kNodesY;
constexpr double kDt = 1e-6;     // 1 us timestep
constexpr double kCap = 1e-6;    // 1 uF per node

/** Conductance matrix of a resistor grid + ground leak per node. */
CsrMatrix
ConductanceMatrix(double mesh_conductance)
{
    Rng rng(11);
    CooMatrix g(kN, kN);
    std::vector<double> diag(static_cast<std::size_t>(kN), 1e-4);
    const auto id = [](Index x, Index y) { return y * kNodesX + x; };
    const auto add_resistor = [&](Index a, Index b, double cond) {
        g.Add(a, b, -cond);
        g.Add(b, a, -cond);
        diag[static_cast<std::size_t>(a)] += cond;
        diag[static_cast<std::size_t>(b)] += cond;
    };
    for (Index y = 0; y < kNodesY; ++y) {
        for (Index x = 0; x < kNodesX; ++x) {
            const double jitter = rng.UniformDouble(0.8, 1.2);
            if (x + 1 < kNodesX) {
                add_resistor(id(x, y), id(x + 1, y),
                             mesh_conductance * jitter);
            }
            if (y + 1 < kNodesY) {
                add_resistor(id(x, y), id(x, y + 1),
                             mesh_conductance * jitter);
            }
        }
    }
    for (Index i = 0; i < kN; ++i) {
        g.Add(i, i, diag[static_cast<std::size_t>(i)]);
    }
    return CsrMatrix::FromCoo(g);
}

/** A = G + C/dt (SPD: SPD G plus positive diagonal). */
CsrMatrix
SystemMatrix(const CsrMatrix& g)
{
    CsrMatrix a = g;
    std::vector<double>& vals = a.mutable_vals();
    for (Index r = 0; r < a.rows(); ++r) {
        for (Index k = a.RowBegin(r); k < a.RowEnd(r); ++k) {
            if (a.col_idx()[k] == r) {
                vals[static_cast<std::size_t>(k)] += kCap / kDt;
            }
        }
    }
    return a;
}

} // namespace

int
main()
{
    SetLogLevel(LogLevel::kWarn);

    CsrMatrix g = ConductanceMatrix(1e-3);
    AzulOptions options;
    options.sim.grid_width = 8;
    options.sim.grid_height = 8;
    options.spec.tol = 1e-10;
    AzulSystem system = *AzulSystem::Create(SystemMatrix(g), options);
    std::printf("circuit: %lld nodes, %lld conductances; mapping "
                "%.2fs (once)\n",
                static_cast<long long>(kN),
                static_cast<long long>(g.nnz()),
                system.mapping_seconds());

    // Step input: current injected at one corner; probe the far one.
    Vector v(static_cast<std::size_t>(kN), 0.0);
    const Index probe = kN - 1;
    const double i_in = 1e-3; // 1 mA

    double total_sim_us = 0.0;
    const int steps = 30;
    std::printf("\n%-8s %14s %14s %10s\n", "t (us)", "V(inject) mV",
                "V(probe) mV", "iters");
    for (int step = 0; step < steps; ++step) {
        // rhs = C/dt * v + source current.
        Vector rhs(v.size());
        for (std::size_t i = 0; i < v.size(); ++i) {
            rhs[i] = kCap / kDt * v[i];
        }
        rhs[0] += i_in;
        const SolveReport rep = system.Solve(rhs);
        if (!rep.run.converged) {
            std::fprintf(stderr, "timestep %d did not converge\n",
                         step);
            return 1;
        }
        v = rep.run.x;
        total_sim_us += rep.solve_seconds * 1e6;
        if (step % 5 == 0) {
            std::printf("%-8.1f %14.4f %14.6f %10lld\n",
                        (step + 1) * kDt * 1e6, v[0] * 1e3,
                        v[static_cast<std::size_t>(probe)] * 1e3,
                        static_cast<long long>(rep.run.iterations));
        }
        // Mid-simulation component change: the mesh conductance bank
        // switches (same sparsity pattern, new values) — the cheap
        // per-timestep update path of Sec II-C.
        if (step == steps / 2) {
            std::printf("-- switching resistor bank (UpdateValues, "
                        "mapping reused) --\n");
            g = ConductanceMatrix(2e-3);
            const azul::Status updated =
                system.UpdateValues(SystemMatrix(g));
            if (!updated.ok()) {
                std::fprintf(stderr, "UpdateValues failed: %s\n",
                             updated.ToString().c_str());
                return 1;
            }
        }
    }
    std::printf("\n%d timesteps in %.1f us of simulated accelerator "
                "time (%.2f us/step)\n",
                steps, total_sim_us, total_sim_us / steps);
    return 0;
}
