/**
 * @file
 * Mapping explorer: compare the four data-mapping strategies on a
 * matrix (generated or loaded from Matrix Market) and report static
 * traffic estimates, simulated link activations, cycles, and
 * throughput — a compact reproduction of the Sec IV / Fig 23 analysis
 * for any input.
 *
 *   ./mapping_explorer [matrix.mtx] [--grid=N] [--iters=N]
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "core/azul_system.h"
#include "solver/coloring.h"
#include "solver/ic0.h"
#include "sparse/generators.h"
#include "sparse/matrix_market.h"
#include "sparse/matrix_stats.h"
#include "util/logging.h"

using namespace azul;

int
main(int argc, char** argv)
{
    SetLogLevel(LogLevel::kWarn);
    std::string path;
    std::int32_t grid = 8;
    Index iters = 3;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--grid=", 0) == 0) {
            grid = static_cast<std::int32_t>(std::stol(arg.substr(7)));
        } else if (arg.rfind("--iters=", 0) == 0) {
            iters = std::stol(arg.substr(8));
        } else {
            path = arg;
        }
    }

    CsrMatrix a = path.empty()
                      ? RandomGeometricLaplacian(3000, 9.0, 5)
                      : CsrMatrix::FromCoo(ReadMatrixMarket(path));
    std::printf("matrix: %s\n",
                FormatMatrixStats(ComputeMatrixStats(a)).c_str());
    std::printf("machine: %dx%d tiles, %lld measured iterations\n\n",
                grid, grid, static_cast<long long>(iters));

    // Static traffic estimates on the colored operator.
    const ColoredMatrix cm = ColorAndPermute(a);
    const CsrMatrix l = IncompleteCholesky(cm.a);
    MappingProblem prob;
    prob.a = &cm.a;
    prob.l = &l;

    Vector b(static_cast<std::size_t>(a.rows()), 1.0);
    std::printf("%-13s %14s %14s %12s %12s %10s\n", "mapping",
                "est. messages", "sim links", "cycles", "GFLOP/s",
                "map secs");
    for (const MapperKind kind :
         {MapperKind::kRoundRobin, MapperKind::kBlock,
          MapperKind::kSparseP, MapperKind::kAzul}) {
        const auto mapper = MakeMapper(kind);
        const DataMapping mapping = mapper->Map(prob, grid * grid);
        const TrafficEstimate est = EstimateTraffic(prob, mapping);

        AzulOptions opts;
        opts.sim.grid_width = grid;
        opts.sim.grid_height = grid;
        opts.mapper = kind;
        opts.spec.tol = 0.0;
        opts.spec.max_iters = iters;
        AzulSystem sys = *AzulSystem::Create(a, opts);
        const SolveReport rep = sys.Solve(b);
        std::printf("%-13s %14.3g %14llu %12llu %12.2f %10.2f\n",
                    MapperKindName(kind).c_str(), est.total(),
                    static_cast<unsigned long long>(
                        rep.run.stats.link_activations),
                    static_cast<unsigned long long>(
                        rep.run.stats.cycles),
                    rep.gflops, rep.mapping_seconds);
    }
    std::printf("\nEach estimated message is one communication-set "
                "crossing (Sec IV-B);\nsimulated links count actual "
                "flit-hops including tree forwarding.\n");
    return 0;
}
