/**
 * @file
 * Shared infrastructure for the figure/table reproduction benches:
 * argument parsing, the benchmark matrix suite, configured runs, and
 * table printing.
 *
 * Every bench accepts:
 *   --scale=F   suite size multiplier        (default 1.0)
 *   --grid=N    square tile-grid dimension   (default 8)
 *   --iters=N   measured PCG iterations      (default 3)
 *   --threads=N host simulation + mapping threads (default: env
 *               AZUL_SIM_THREADS, else 1; results are bit-identical
 *               at any thread count)
 *   --engine=E  execution engine: cycle (default) or functional
 *               (docs/SIMULATOR.md, "Choosing an execution engine");
 *               overrides the AZUL_ENGINE environment variable
 *   --solver=S  iterative method: jacobi/pcg/bicgstab/gmres
 *               (docs/SOLVERS.md); overrides AZUL_SOLVER
 *   --precond=P preconditioner: none/jacobi/symgs/ssor/ic0;
 *               overrides AZUL_PRECOND
 *   --precision=W iterate storage precision: fp64 (default) or fp32
 *               (docs/SOLVERS.md, "Mixed precision"); overrides
 *               AZUL_PRECISION
 *   --quick     small preset for smoke runs  (scale 0.2, grid 4)
 *   --cache[=D] reuse mappings via the persistent cache in directory
 *               D (default .azul-mapping-cache); off when absent
 *   --faults[=SPEC] arm fault injection (docs/ROBUSTNESS.md). SPEC is
 *               the AZUL_FAULTS format, e.g.
 *               rate=1e-5,kinds=sram|noc,seed=7,interval=32; the bare
 *               flag uses rate=1e-5 with all kinds. The AZUL_FAULTS
 *               environment variable is applied first, so the flag
 *               overrides it key by key.
 *
 * The defaults keep the per-tile working set (nnz/tile, vector slots
 * per tile) close to the paper's 64x64-tile regime, which is what the
 * relative results depend on; larger grids with laptop-sized matrices
 * starve the tiles and flatten mapping effects.
 */
#ifndef AZUL_BENCH_COMMON_H_
#define AZUL_BENCH_COMMON_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/azul_system.h"
#include "sim/observer.h"
#include "sparse/generators.h"
#include "util/rng.h"
#include "util/stats.h"

namespace azul::bench {

/** Common bench parameters. */
struct BenchArgs {
    double scale = 1.0;
    std::int32_t grid = 8;
    Index iters = 3;
    std::int32_t threads = 0; //!< 0 = resolved from env in Parse
    bool quick = false;
    std::string cache_dir;  //!< empty = mapping cache disabled
    std::string fault_spec; //!< ParseFaultSpec format; empty = off
    /** "cycle"/"functional" from --engine; empty = no explicit flag,
     *  so the AZUL_ENGINE env override (or the default) stands. */
    std::string engine;
    /** Solver-spec flags; empty = no explicit flag, so the matching
     *  env override (AZUL_SOLVER/AZUL_PRECOND/AZUL_PRECISION) or the
     *  default stands. */
    std::string solver;
    std::string precond;
    std::string precision;

    static BenchArgs
    Parse(int argc, char** argv)
    {
        BenchArgs args;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--scale=", 0) == 0) {
                args.scale = std::stod(arg.substr(8));
            } else if (arg.rfind("--grid=", 0) == 0) {
                args.grid =
                    static_cast<std::int32_t>(std::stol(arg.substr(7)));
            } else if (arg.rfind("--iters=", 0) == 0) {
                args.iters = std::stol(arg.substr(8));
            } else if (arg.rfind("--threads=", 0) == 0) {
                args.threads = static_cast<std::int32_t>(
                    std::stol(arg.substr(10)));
            } else if (arg == "--cache") {
                args.cache_dir = ".azul-mapping-cache";
            } else if (arg.rfind("--cache=", 0) == 0) {
                args.cache_dir = arg.substr(8);
            } else if (arg == "--faults") {
                args.fault_spec = "rate=1e-5,kinds=all";
            } else if (arg.rfind("--faults=", 0) == 0) {
                args.fault_spec = arg.substr(9);
            } else if (arg.rfind("--engine=", 0) == 0) {
                args.engine = arg.substr(9);
                EngineKind parsed = EngineKind::kCycle;
                if (!ParseEngineKind(args.engine, parsed)) {
                    std::fprintf(stderr,
                                 "bad --engine '%s' (want cycle or "
                                 "functional)\n",
                                 args.engine.c_str());
                    std::exit(2);
                }
            } else if (arg.rfind("--solver=", 0) == 0) {
                args.solver = arg.substr(9);
                SolverKind parsed = SolverKind::kPcg;
                if (!ParseSolverKind(args.solver, parsed)) {
                    std::fprintf(stderr,
                                 "bad --solver '%s' (want jacobi, "
                                 "pcg, bicgstab or gmres)\n",
                                 args.solver.c_str());
                    std::exit(2);
                }
            } else if (arg.rfind("--precond=", 0) == 0) {
                args.precond = arg.substr(10);
                PreconditionerKind parsed =
                    PreconditionerKind::kIdentity;
                if (!ParsePreconditionerKind(args.precond, parsed)) {
                    std::fprintf(stderr,
                                 "bad --precond '%s' (want none, "
                                 "jacobi, symgs, ssor or ic0)\n",
                                 args.precond.c_str());
                    std::exit(2);
                }
            } else if (arg.rfind("--precision=", 0) == 0) {
                args.precision = arg.substr(12);
                PrecisionMode parsed = PrecisionMode::kFp64;
                if (!ParsePrecisionMode(args.precision, parsed)) {
                    std::fprintf(stderr,
                                 "bad --precision '%s' (want fp64 or "
                                 "fp32)\n",
                                 args.precision.c_str());
                    std::exit(2);
                }
            } else if (arg == "--quick") {
                args.quick = true;
                args.scale = 0.2;
                args.grid = 4;
                args.iters = 2;
            } else {
                std::fprintf(stderr, "unknown argument '%s'\n",
                             arg.c_str());
                std::exit(2);
            }
        }
        if (args.threads <= 0) {
            // No explicit flag: the documented env overrides decide
            // (flags > env > defaults, see ApplyEnvOverrides).
            AzulOptions defaults;
            ApplyEnvOverrides(defaults);
            args.threads = defaults.sim.sim_threads;
        }
        return args;
    }
};

/** One suite matrix with its right-hand side. */
struct BenchMatrix {
    std::string name;
    std::string analog_of;
    CsrMatrix a;
    Vector b;
    int parallelism_class = 0;
};

/** Loads the benchmark suite with deterministic random rhs vectors. */
inline std::vector<BenchMatrix>
LoadSuite(const BenchArgs& args)
{
    std::vector<BenchMatrix> out;
    for (SuiteMatrix& sm : MakeBenchmarkSuite(args.scale)) {
        BenchMatrix bm;
        bm.name = sm.name;
        bm.analog_of = sm.analog_of;
        bm.parallelism_class = sm.parallelism_class;
        Rng rng(0xb0b + out.size());
        bm.b.resize(static_cast<std::size_t>(sm.a.rows()));
        for (double& v : bm.b) {
            v = rng.UniformDouble(-1.0, 1.0);
        }
        bm.a = std::move(sm.a);
        out.push_back(std::move(bm));
    }
    return out;
}

/** Base Azul options for a bench run (throughput mode: fixed iters). */
inline AzulOptions
BaseOptions(const BenchArgs& args)
{
    AzulOptions opts;
    // Env first (AZUL_FAULTS, AZUL_MAPPING_CACHE, AZUL_SIM_THREADS),
    // then the explicit flags on top so flags win.
    ApplyEnvOverrides(opts);
    opts.sim.grid_width = args.grid;
    opts.sim.grid_height = args.grid;
    opts.sim.sim_threads = args.threads;
    opts.azul_mapper.partitioner.threads = args.threads;
    if (!args.cache_dir.empty()) {
        opts.mapping_cache_dir = args.cache_dir;
    }
    if (!args.engine.empty()) {
        // Parse already validated the flag value.
        ParseEngineKind(args.engine, opts.engine);
    }
    if (!args.solver.empty()) {
        ParseSolverKind(args.solver, opts.spec.method);
        if (opts.spec.method == SolverKind::kJacobi &&
            args.precond.empty()) {
            // A bare --solver=jacobi works out of the box: the
            // stationary method requires precond=none, so drop the
            // ic0 default (an explicit --precond still wins below
            // and gets rejected by the spec validation).
            opts.spec.precond = PreconditionerKind::kIdentity;
        }
    }
    if (!args.precond.empty()) {
        ParsePreconditionerKind(args.precond, opts.spec.precond);
    }
    if (!args.precision.empty()) {
        ParsePrecisionMode(args.precision, opts.spec.precision);
    }
    opts.spec.tol = 0.0; // run exactly `iters` iterations
    opts.spec.max_iters = args.iters;
    if (!args.fault_spec.empty() &&
        !ParseFaultSpec(args.fault_spec, opts.sim)) {
        std::fprintf(stderr, "malformed --faults spec '%s'\n",
                     args.fault_spec.c_str());
        std::exit(2);
    }
    return opts;
}

/** Builds a system or exits with the Status message — bench inputs
 *  are generated, so a rejection is a bench bug, not user error. */
inline AzulSystem
MakeSystemOrDie(const CsrMatrix& a, const AzulOptions& opts)
{
    StatusOr<AzulSystem> sys = AzulSystem::Create(a, opts);
    if (!sys.ok()) {
        std::fprintf(stderr, "AzulSystem::Create failed: %s\n",
                     sys.status().ToString().c_str());
        std::exit(1);
    }
    return *std::move(sys);
}

/** Builds a system and solves; convenience wrapper. */
inline SolveReport
RunConfig(const CsrMatrix& a, const Vector& b, const AzulOptions& opts)
{
    AzulSystem sys = MakeSystemOrDie(a, opts);
    return sys.Solve(b);
}

/** RunConfig with measurement observers attached for the solve. */
inline SolveReport
RunConfig(const CsrMatrix& a, const Vector& b, const AzulOptions& opts,
          const std::vector<SimObserver*>& observers)
{
    AzulSystem sys = MakeSystemOrDie(a, opts);
    for (SimObserver* o : observers) {
        sys.engine().AttachObserver(o);
    }
    return sys.Solve(b);
}

/** Prints the bench banner with the paper's expected takeaway. */
inline void
PrintBanner(const char* figure, const char* paper_expectation,
            const BenchArgs& args)
{
    std::printf("==================================================="
                "=========================\n");
    std::printf("%s\n", figure);
    std::printf("paper: %s\n", paper_expectation);
    std::printf("config: scale=%.2f grid=%dx%d iters=%lld"
                " host-threads=%d\n",
                args.scale, args.grid, args.grid,
                static_cast<long long>(args.iters), args.threads);
    std::printf("---------------------------------------------------"
                "-------------------------\n");
}

/** Prints a gmean footer row. */
inline void
PrintGmean(const char* label, const std::vector<double>& values)
{
    std::printf("%-16s gmean = %.4g\n", label, GeoMean(values));
}

} // namespace azul::bench

#endif // AZUL_BENCH_COMMON_H_
