/**
 * @file
 * Fig 11: NoC traffic (link activations) under Round-Robin, Block,
 * and Azul mappings, normalized to Round-Robin. Paper: the Azul
 * mapping reduces traffic by gmean 66x vs Round-Robin and 46x vs
 * Block. Also reports the multicast-tree ablation (Fig 18's
 * motivation): point-to-point sends vs compiler-built trees.
 */
#include "common.h"

using namespace azul;
using namespace azul::bench;

int
main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner("Fig 11: NoC link activations by mapping (normalized "
                "to round-robin)",
                "azul mapping cuts traffic by 1-2 orders of magnitude; "
                "trees beat point-to-point",
                args);

    std::printf("%-16s %12s %12s %12s %14s\n", "matrix", "round-robin",
                "block", "azul", "azul(p2p)");
    std::vector<double> reduction_rr;
    std::vector<double> reduction_blk;
    for (const BenchMatrix& bm : LoadSuite(args)) {
        const auto run = [&](MapperKind kind, bool trees) {
            AzulOptions opts = BaseOptions(args);
            opts.mapper = kind;
            opts.graph.use_trees = trees;
            opts.sim = IdealPeConfig(opts.sim);
            return static_cast<double>(
                RunConfig(bm.a, bm.b, opts)
                    .run.stats.link_activations);
        };
        const double rr = run(MapperKind::kRoundRobin, true);
        const double blk = run(MapperKind::kBlock, true);
        const double azul_links = run(MapperKind::kAzul, true);
        const double azul_p2p = run(MapperKind::kAzul, false);
        reduction_rr.push_back(rr / azul_links);
        reduction_blk.push_back(blk / azul_links);
        std::printf("%-16s %12.3f %12.3f %12.3f %14.3f\n",
                    bm.name.c_str(), 1.0, blk / rr, azul_links / rr,
                    azul_p2p / rr);
    }
    std::printf("\n");
    PrintGmean("traffic reduction vs RR", reduction_rr);
    PrintGmean("traffic reduction vs block", reduction_blk);
    return 0;
}
