/**
 * @file
 * Fig 24: power breakdown by component (leakage / SRAM / NoC /
 * compute) per matrix, from simulation activity factors. The paper:
 * 210 W average (up to 288 W) at 4096 tiles, SRAM-dominated.
 */
#include "common.h"
#include "energy/energy_model.h"

using namespace azul;
using namespace azul::bench;

int
main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner("Fig 24: Azul power breakdown by component",
                "SRAM dominates dynamic power; paper total ~210 W at "
                "64x64 tiles (scales with tile count)",
                args);

    std::printf("%-16s %10s %10s %10s %10s %10s\n", "matrix",
                "leak(W)", "SRAM(W)", "NoC(W)", "compute(W)",
                "total(W)");
    for (const BenchMatrix& bm : LoadSuite(args)) {
        const SolveReport rep =
            RunConfig(bm.a, bm.b, BaseOptions(args));
        const PowerBreakdown& p = rep.power;
        std::printf("%-16s %10.2f %10.2f %10.2f %10.2f %10.2f\n",
                    bm.name.c_str(), p.leakage_w, p.sram_w, p.noc_w,
                    p.compute_w, p.total());
    }
    std::printf("\n(paper-scale projection: multiply dynamic terms by "
                "utilization-matched 64x64/grid ratio)\n");
    return 0;
}
