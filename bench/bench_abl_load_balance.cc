/**
 * @file
 * Ablation (beyond the paper's figures): spatial load balance of
 * issued operations per tile under each mapping. The hypergraph
 * partitioner balances *data* per tile (Sec IV-B constraint); this
 * measures the resulting *work* balance — max/mean issued ops and the
 * p95/p50 spread.
 */
#include <algorithm>

#include "common.h"

using namespace azul;
using namespace azul::bench;

int
main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner("Ablation: per-tile work balance by mapping",
                "max/mean issued ops per tile (1.0 = perfect); the "
                "partitioner balances data, which tracks work",
                args);

    std::printf("%-16s %12s %12s %12s %12s\n", "matrix", "rrobin",
                "block", "sparsep", "azul");
    for (const BenchMatrix& bm : LoadSuite(args)) {
        std::printf("%-16s", bm.name.c_str());
        for (const MapperKind kind :
             {MapperKind::kRoundRobin, MapperKind::kBlock,
              MapperKind::kSparseP, MapperKind::kAzul}) {
            AzulOptions opts = BaseOptions(args);
            opts.mapper = kind;
            const SolveReport rep = RunConfig(bm.a, bm.b, opts);
            std::printf(" %11.2fx",
                        rep.run.stats.TileImbalance());
        }
        std::printf("\n");
    }
    std::printf("\n(SparseP only populates a floor(sqrt(P))^2 "
                "subgrid, inflating its imbalance on non-square "
                "counts.)\n");
    return 0;
}
