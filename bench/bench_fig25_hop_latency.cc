/**
 * @file
 * Fig 25: sensitivity of gmean throughput to NoC hop latency
 * (1-4 cycles/hop). The paper: ~4% gmean degradation per extra cycle
 * — Azul's mapping makes it barely network-latency sensitive.
 */
#include "common.h"

using namespace azul;
using namespace azul::bench;

int
main(int argc, char** argv)
{
    BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner("Fig 25: NoC hop-latency sweep",
                "gmean throughput degrades only ~4% per extra "
                "cycle/hop",
                args);

    const auto suite = LoadSuite(args);
    std::printf("%-10s %16s %12s\n", "cycles/hop", "gmean GFLOP/s",
                "vs 1 cycle");
    double base = 0.0;
    for (const std::int32_t hop : {1, 2, 3, 4}) {
        std::vector<double> gflops;
        for (const BenchMatrix& bm : suite) {
            AzulOptions opts = BaseOptions(args);
            opts.sim.hop_latency = hop;
            gflops.push_back(RunConfig(bm.a, bm.b, opts).gflops);
        }
        const double gm = GeoMean(gflops);
        if (hop == 1) {
            base = gm;
        }
        std::printf("%-10d %16.1f %11.1f%%\n", hop, gm,
                    gm / base * 100.0);
    }
    return 0;
}
