/**
 * @file
 * Table I: maximum available parallelism (total work / critical path)
 * for SpMV and for SpTRSV on the original and the colored+permuted
 * matrix. The paper shows permutation raising SpTRSV parallelism by
 * 1-2 orders of magnitude while remaining far below SpMV's.
 */
#include "common.h"
#include "solver/coloring.h"
#include "solver/parallelism.h"
#include "sparse/triangle.h"

using namespace azul;
using namespace azul::bench;

int
main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner("Table I: available parallelism, SpMV vs SpTRSV "
                "(original / permuted)",
                "coloring boosts SpTRSV parallelism ~10-300x; SpMV "
                "remains far more parallel",
                args);

    std::printf("%-16s %14s %18s %18s %8s\n", "matrix", "SpMV",
                "SpTRSV original", "SpTRSV permuted", "boost");
    for (const BenchMatrix& bm : LoadSuite(args)) {
        const ColoredMatrix cm = ColorAndPermute(bm.a);
        const auto spmv = AnalyzeSpMVParallelism(bm.a);
        const auto orig =
            AnalyzeSpTRSVParallelism(LowerTriangle(bm.a));
        const auto perm =
            AnalyzeSpTRSVParallelism(LowerTriangle(cm.a));
        std::printf("%-16s %14.0f %18.0f %18.0f %7.1fx\n",
                    bm.name.c_str(), spmv.parallelism,
                    orig.parallelism, perm.parallelism,
                    perm.parallelism / orig.parallelism);
    }
    return 0;
}
