/**
 * @file
 * Fig 7: GPU runtime, original vs colored+permuted matrices. Coloring
 * shortens SpTRSV level chains, improving GPU solver runtime by >= 2x.
 */
#include "baselines/gpu_model.h"
#include "common.h"
#include "solver/coloring.h"
#include "solver/ic0.h"

using namespace azul;
using namespace azul::bench;

int
main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner("Fig 7: GPU runtime, original vs graph-colored",
                "colored/permuted matrices run >= 2x faster on the GPU",
                args);

    std::printf("%-16s %14s %14s %10s\n", "matrix", "original (us)",
                "permuted (us)", "speedup");
    std::vector<double> speedups;
    for (const BenchMatrix& bm : LoadSuite(args)) {
        const ColoredMatrix cm = ColorAndPermute(bm.a);
        const CsrMatrix l_orig = IncompleteCholesky(bm.a);
        const CsrMatrix l_perm = IncompleteCholesky(cm.a);
        const double t_orig =
            GpuPcgIterationTime(bm.a, &l_orig).total() * 1e6;
        const double t_perm =
            GpuPcgIterationTime(cm.a, &l_perm).total() * 1e6;
        speedups.push_back(t_orig / t_perm);
        std::printf("%-16s %14.1f %14.1f %9.2fx\n", bm.name.c_str(),
                    t_orig, t_perm, t_orig / t_perm);
    }
    PrintGmean("coloring speedup", speedups);
    return 0;
}
