/**
 * @file
 * Ablation (beyond the paper's figures): mixed-precision (FP32
 * iterate storage, docs/SOLVERS.md "Mixed precision") against the
 * FP64 baseline on the benchmark suite. Each matrix runs the same
 * solver program at both precisions for a fixed iteration budget and
 * reports, per precision:
 *
 *   - total and vector-phase cycles (FP32 packs two values per SRAM
 *     word, so elementwise sweeps finish in fewer cycles),
 *   - peak per-tile data SRAM (the footprint win),
 *   - the TRUE relative residual reached after the budget, recomputed
 *     on the host in FP64 (the accuracy cost of quantized iterates).
 *
 * The expected shape: FP32 trades a bounded accuracy floor for a
 * vector-phase speedup and roughly half the vector footprint; the
 * FP64 recovery (periodic true-residual recompute) keeps the
 * reported residual honest, so the floor is visible, not hidden.
 *
 * Runs on either engine (--engine=cycle|functional); the solve is
 * bit-identical across engines at both precisions.
 */
#include <cmath>

#include "common.h"
#include "solver/spmv.h"

using namespace azul;
using namespace azul::bench;

namespace {

double
TrueRelativeResidual(const CsrMatrix& a, const Vector& x,
                     const Vector& b)
{
    const Vector ax = SpMV(a, x);
    double rr = 0.0;
    double bb = 0.0;
    for (std::size_t i = 0; i < b.size(); ++i) {
        const double d = b[i] - ax[i];
        rr += d * d;
        bb += b[i] * b[i];
    }
    return bb > 0.0 ? std::sqrt(rr / bb) : 0.0;
}

struct PrecisionPoint {
    SolveReport report;
    double true_residual = 0.0;
};

PrecisionPoint
RunPrecision(const BenchMatrix& bm, const AzulOptions& base,
             PrecisionMode precision)
{
    AzulOptions opts = base;
    opts.spec.precision = precision;
    PrecisionPoint p;
    p.report = RunConfig(bm.a, bm.b, opts);
    p.true_residual = TrueRelativeResidual(bm.a, p.report.run.x, bm.b);
    return p;
}

std::uint64_t
VectorCycles(const SolveReport& rep)
{
    return rep.run.stats.class_cycles[static_cast<std::size_t>(
        KernelClass::kVectorOp)];
}

} // namespace

int
main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner(
        "Ablation: FP32 iterate storage vs the FP64 baseline",
        "FP32 halves the vector footprint and speeds elementwise "
        "phases; FP64 recovery bounds the accuracy floor",
        args);

    std::printf("%-16s %5s %12s %12s %9s %10s %8s %8s\n", "matrix",
                "prec", "cycles", "vec_cycles", "sram_kb",
                "true_rel_r", "speedup", "sram_sv");
    std::vector<double> vec_speedups;
    std::vector<double> sram_savings;
    for (const BenchMatrix& bm : LoadSuite(args)) {
        const AzulOptions base = BaseOptions(args);
        const PrecisionPoint p64 =
            RunPrecision(bm, base, PrecisionMode::kFp64);
        const PrecisionPoint p32 =
            RunPrecision(bm, base, PrecisionMode::kFp32);

        const double vec64 = static_cast<double>(VectorCycles(p64.report));
        const double vec32 = static_cast<double>(VectorCycles(p32.report));
        const double vec_speedup = vec32 > 0.0 ? vec64 / vec32 : 1.0;
        const double sram64 =
            static_cast<double>(p64.report.sram.max_data_bytes);
        const double sram32 =
            static_cast<double>(p32.report.sram.max_data_bytes);
        const double sram_save = sram64 > 0.0 ? sram32 / sram64 : 1.0;
        vec_speedups.push_back(vec_speedup);
        sram_savings.push_back(sram_save);

        std::printf("%-16s %5s %12llu %12llu %9.1f %10.3e %8s %8s\n",
                    bm.name.c_str(), "fp64",
                    static_cast<unsigned long long>(
                        p64.report.run.stats.cycles),
                    static_cast<unsigned long long>(VectorCycles(p64.report)),
                    sram64 / 1024.0, p64.true_residual, "1.00x",
                    "1.00x");
        std::printf("%-16s %5s %12llu %12llu %9.1f %10.3e %7.2fx %7.2fx\n",
                    bm.name.c_str(), "fp32",
                    static_cast<unsigned long long>(
                        p32.report.run.stats.cycles),
                    static_cast<unsigned long long>(VectorCycles(p32.report)),
                    sram32 / 1024.0, p32.true_residual, vec_speedup,
                    sram_save);
    }
    PrintGmean("vec speedup", vec_speedups);
    PrintGmean("sram ratio", sram_savings);
    return 0;
}
