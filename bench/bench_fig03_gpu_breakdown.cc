/**
 * @file
 * Fig 3: GPU runtime breakdown of PCG by kernel (SpTRSV / SpMV /
 * vector ops). The paper shows SpMV + SpTRSV dominating everywhere.
 */
#include "baselines/gpu_model.h"
#include "common.h"
#include "solver/coloring.h"
#include "solver/ic0.h"

using namespace azul;
using namespace azul::bench;

int
main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner("Fig 3: GPU PCG runtime breakdown by kernel",
                "SpMV + SpTRSV dominate; vector ops are a small but "
                "non-trivial share",
                args);

    std::printf("%-16s %10s %10s %10s\n", "matrix", "SpTRSV", "SpMV",
                "VectorOps");
    for (const BenchMatrix& bm : LoadSuite(args)) {
        const ColoredMatrix cm = ColorAndPermute(bm.a);
        const CsrMatrix l = IncompleteCholesky(cm.a);
        const GpuKernelTimes t = GpuPcgIterationTime(cm.a, &l);
        const double total = t.total();
        std::printf("%-16s %9.1f%% %9.1f%% %9.1f%%\n", bm.name.c_str(),
                    t.sptrsv_s / total * 100.0,
                    t.spmv_s / total * 100.0,
                    t.vector_s / total * 100.0);
    }
    return 0;
}
