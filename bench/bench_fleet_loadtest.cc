/**
 * @file
 * Fleet capacity model: open-loop load test of AzulFleet across
 * instance counts (docs/FLEET.md, "Load-test methodology").
 *
 * Two phases per instance count:
 *
 *  1. Saturation: a closed-loop burst (every request admitted up
 *     front, then Drain) measures the fleet's peak sustainable
 *     throughput — saturation RPS.
 *  2. Open loop: Poisson arrivals at --utilization x saturation.
 *     Unlike a closed loop, the generator does not wait for
 *     responses, so queueing delay is *visible*: per-request latency
 *     is measured from the intended arrival time (generator lag +
 *     queue + service), the way a real client would see it. Reported
 *     as p50/p99/p999.
 *
 * Expectation: instances are independent AzulService processes-in-a-
 * process — own scheduler, own thread pool — so saturation RPS scales
 * near-linearly with instance count until the host runs out of cores
 * (the 1->2 scaling footer should be >= 1.7x on a multi-core host),
 * while open-loop tail latency at fixed utilization stays flat.
 * Results per session stay bit-identical whatever the instance count
 * (tests/test_fleet.cc asserts this; here we only measure).
 *
 * Mixed-tenant traffic: sessions cycle through the bench suite
 * (--size-mix picks the small/large/mixed ends of the matrix-size
 * distribution), and --warm-frac of requests warm-start from the
 * session's previous solution, modeling time-stepped tenants.
 *
 * Flags (bench/common.h), plus:
 *   --instances=L   comma list of instance counts    (default 1,2,4)
 *   --sessions=N    tenant sessions                  (default 8)
 *   --tpi=N         service threads per instance     (default 2)
 *   --sat-requests=N closed-loop burst size          (default 24/session)
 *   --duration=S    open-loop phase seconds          (default 2.0)
 *   --warm-frac=F   fraction of warm-start requests  (default 0.5)
 *   --utilization=F offered / saturation             (default 0.6)
 *   --size-mix=M    small | large | mixed            (default mixed)
 *   --seed=N        arrival-process seed             (default 42)
 *
 * The default engine here is functional: this bench measures
 * router/scheduler capacity, not simulated hardware (pass
 * --engine=cycle to model cycle-accurate serving).
 */
#include <chrono>
#include <cstring>
#include <random>
#include <thread>

#include "common.h"
#include "fleet/azul_fleet.h"

using namespace azul;
using namespace azul::bench;

namespace {

struct LoadArgs {
    std::vector<int> instances = {1, 2, 4};
    int sessions = 8;
    int threads_per_instance = 2;
    int sat_requests = 0; //!< 0 = 24 per session
    double duration = 2.0;
    double warm_frac = 0.5;
    double utilization = 0.6;
    std::string size_mix = "mixed";
    std::uint64_t seed = 42;
};

/** Strips the fleet flags before BenchArgs sees the rest. */
LoadArgs
ParseLoadArgs(int& argc, char** argv)
{
    LoadArgs out;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--instances=", 0) == 0) {
            out.instances.clear();
            std::string rest = arg.substr(12);
            std::size_t pos = 0;
            while (pos < rest.size()) {
                std::size_t comma = rest.find(',', pos);
                if (comma == std::string::npos) {
                    comma = rest.size();
                }
                out.instances.push_back(static_cast<int>(
                    std::stol(rest.substr(pos, comma - pos))));
                pos = comma + 1;
            }
        } else if (arg.rfind("--sessions=", 0) == 0) {
            out.sessions = static_cast<int>(std::stol(arg.substr(11)));
        } else if (arg.rfind("--tpi=", 0) == 0) {
            out.threads_per_instance =
                static_cast<int>(std::stol(arg.substr(6)));
        } else if (arg.rfind("--sat-requests=", 0) == 0) {
            out.sat_requests =
                static_cast<int>(std::stol(arg.substr(15)));
        } else if (arg.rfind("--duration=", 0) == 0) {
            out.duration = std::stod(arg.substr(11));
        } else if (arg.rfind("--warm-frac=", 0) == 0) {
            out.warm_frac = std::stod(arg.substr(12));
        } else if (arg.rfind("--utilization=", 0) == 0) {
            out.utilization = std::stod(arg.substr(14));
        } else if (arg.rfind("--size-mix=", 0) == 0) {
            out.size_mix = arg.substr(11);
        } else if (arg.rfind("--seed=", 0) == 0) {
            out.seed = std::stoull(arg.substr(7));
        } else {
            argv[w++] = argv[i];
        }
    }
    argc = w;
    return out;
}

/** Applies --size-mix to the suite: the small or large end of the
 *  matrix-size distribution, or the whole mix. */
std::vector<BenchMatrix>
ApplySizeMix(std::vector<BenchMatrix> suite, const std::string& mix)
{
    if (mix == "mixed" || suite.size() < 3) {
        return suite;
    }
    std::sort(suite.begin(), suite.end(),
              [](const BenchMatrix& a, const BenchMatrix& b) {
                  return a.a.rows() < b.a.rows();
              });
    const std::size_t third = suite.size() / 3;
    if (mix == "small") {
        suite.resize(suite.size() - third);
    } else if (mix == "large") {
        suite.erase(suite.begin(),
                    suite.begin() + static_cast<std::ptrdiff_t>(third));
    } else {
        std::fprintf(stderr,
                     "bad --size-mix '%s' (want small, large, or "
                     "mixed)\n",
                     mix.c_str());
        std::exit(2);
    }
    return suite;
}

struct FleetRow {
    int instances = 0;
    double saturation_rps = 0.0;
    double offered_rps = 0.0;
    double achieved_rps = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double p999_ms = 0.0;
    std::int64_t rejected = 0;
};

std::unique_ptr<AzulFleet>
MakeFleet(int instances, const LoadArgs& load, const BenchArgs& bargs,
          std::size_t max_queue)
{
    FleetOptions fopts;
    fopts.num_instances = instances;
    fopts.service.num_threads = load.threads_per_instance;
    fopts.service.max_queue = max_queue;
    fopts.service.mapping_cache_dir = bargs.cache_dir;
    // A pure load generator: nothing is killed, so don't retain
    // request payloads for replay.
    fopts.record_replay_log = false;
    StatusOr<std::unique_ptr<AzulFleet>> fleet =
        AzulFleet::Create(std::move(fopts));
    if (!fleet.ok()) {
        std::fprintf(stderr, "fleet create: %s\n",
                     fleet.status().ToString().c_str());
        std::exit(1);
    }
    return *std::move(fleet);
}

std::vector<SessionId>
OpenTenants(AzulFleet& fleet, const LoadArgs& load,
            const std::vector<BenchMatrix>& suite,
            const AzulOptions& base,
            std::vector<const BenchMatrix*>& mats)
{
    std::vector<SessionId> ids;
    for (int s = 0; s < load.sessions; ++s) {
        const BenchMatrix& bm =
            suite[static_cast<std::size_t>(s) % suite.size()];
        const StatusOr<SessionId> id = fleet.OpenSession(
            bm.a, base, "tenant-" + std::to_string(s));
        if (!id.ok()) {
            std::fprintf(stderr, "open: %s\n",
                         id.status().ToString().c_str());
            std::exit(1);
        }
        ids.push_back(*id);
        mats.push_back(&bm);
    }
    return ids;
}

FleetRow
RunInstancePoint(int instances, const LoadArgs& load,
                 const BenchArgs& bargs,
                 const std::vector<BenchMatrix>& suite,
                 const AzulOptions& base)
{
    FleetRow row;
    row.instances = instances;
    const int sat_requests = load.sat_requests > 0
                                 ? load.sat_requests
                                 : 24 * load.sessions;

    // ---- Phase 1: closed-loop saturation burst -------------------------
    {
        std::unique_ptr<AzulFleet> fleet = MakeFleet(
            instances, load, bargs,
            static_cast<std::size_t>(sat_requests) + 16);
        std::vector<const BenchMatrix*> mats;
        std::vector<SessionId> ids =
            OpenTenants(*fleet, load, suite, base, mats);
        // Warm every tenant once outside the measured region so the
        // warm-start fraction has a previous solution to start from.
        for (int s = 0; s < load.sessions; ++s) {
            const std::size_t si = static_cast<std::size_t>(s);
            (void)*fleet->SubmitSolve(ids[si], mats[si]->b);
        }
        fleet->Drain();

        std::mt19937_64 rng(load.seed);
        std::uniform_real_distribution<double> uni(0.0, 1.0);
        const auto t0 = std::chrono::steady_clock::now();
        std::vector<RequestId> reqs;
        reqs.reserve(static_cast<std::size_t>(sat_requests));
        for (int r = 0; r < sat_requests; ++r) {
            const std::size_t si =
                static_cast<std::size_t>(r % load.sessions);
            SubmitOptions sopts;
            sopts.warm_start = uni(rng) < load.warm_frac;
            const StatusOr<RequestId> id =
                fleet->SubmitSolve(ids[si], mats[si]->b, sopts);
            if (id.ok()) {
                reqs.push_back(*id);
            } else {
                ++row.rejected;
            }
        }
        fleet->Drain();
        const double wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        row.saturation_rps = static_cast<double>(reqs.size()) / wall;
        for (const RequestId id : reqs) {
            (void)fleet->Wait(id);
        }
    }

    // ---- Phase 2: open-loop Poisson arrivals ---------------------------
    {
        row.offered_rps = load.utilization * row.saturation_rps;
        const int expected = static_cast<int>(row.offered_rps *
                                              load.duration) +
                             16;
        std::unique_ptr<AzulFleet> fleet =
            MakeFleet(instances, load, bargs,
                      static_cast<std::size_t>(expected) * 2);
        std::vector<const BenchMatrix*> mats;
        std::vector<SessionId> ids =
            OpenTenants(*fleet, load, suite, base, mats);
        for (int s = 0; s < load.sessions; ++s) {
            const std::size_t si = static_cast<std::size_t>(s);
            (void)*fleet->SubmitSolve(ids[si], mats[si]->b);
        }
        fleet->Drain();

        std::mt19937_64 rng(load.seed ^ 0x9e3779b97f4a7c15ULL);
        std::exponential_distribution<double> interarrival(
            row.offered_rps);
        std::uniform_real_distribution<double> uni(0.0, 1.0);
        std::uniform_int_distribution<int> pick(0, load.sessions - 1);

        struct InFlight {
            RequestId id = 0;
            double lag_ms = 0.0; //!< intended arrival -> admission
        };
        std::vector<InFlight> inflight;
        const auto start = std::chrono::steady_clock::now();
        double next_arrival = 0.0; // seconds since start
        std::int64_t submitted = 0;
        while (next_arrival < load.duration) {
            const auto intended =
                start + std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(
                                next_arrival));
            // Open loop: arrivals keep their schedule no matter how
            // the fleet is doing; falling behind shows up as lag.
            std::this_thread::sleep_until(intended);
            const std::size_t si =
                static_cast<std::size_t>(pick(rng));
            SubmitOptions sopts;
            sopts.warm_start = uni(rng) < load.warm_frac;
            const auto before = std::chrono::steady_clock::now();
            const StatusOr<RequestId> id =
                fleet->SubmitSolve(ids[si], mats[si]->b, sopts);
            ++submitted;
            if (id.ok()) {
                InFlight f;
                f.id = *id;
                f.lag_ms = std::chrono::duration<double>(before -
                                                         intended)
                               .count() *
                           1e3;
                inflight.push_back(f);
            } else {
                ++row.rejected;
            }
            next_arrival += interarrival(rng);
        }
        const auto submit_end = std::chrono::steady_clock::now();

        std::vector<double> latencies_ms;
        latencies_ms.reserve(inflight.size());
        for (const InFlight& f : inflight) {
            const StatusOr<SolveResponse> resp = fleet->Wait(f.id);
            if (!resp.ok() || !resp->status.ok()) {
                continue; // deadline/rejection: not a latency sample
            }
            latencies_ms.push_back(f.lag_ms +
                                   (resp->queue_seconds +
                                    resp->service_seconds) *
                                       1e3);
        }
        const double submit_wall =
            std::chrono::duration<double>(submit_end - start).count();
        row.achieved_rps =
            static_cast<double>(latencies_ms.size()) / submit_wall;
        row.p50_ms = Percentile(latencies_ms, 50.0);
        row.p99_ms = Percentile(latencies_ms, 99.0);
        row.p999_ms = Percentile(latencies_ms, 99.9);
        (void)submitted;
    }
    return row;
}

} // namespace

int
main(int argc, char** argv)
{
    LoadArgs load = ParseLoadArgs(argc, argv);
    BenchArgs args = BenchArgs::Parse(argc, argv);
    if (args.quick) {
        load.instances = {1, 2};
        load.sessions = 4;
        load.sat_requests = 32;
        load.duration = 0.5;
    }
    PrintBanner(
        "fleet load test: saturation RPS and open-loop tail latency "
        "vs instance count",
        "sessions shard cleanly, so instances scale like independent "
        "machines until the host runs out of cores; open-loop tails "
        "stay flat at fixed utilization",
        args);

    AzulOptions base = BaseOptions(args);
    if (args.engine.empty()) {
        // Capacity model by default: the functional engine serves
        // bit-identical numerics at a fraction of the cycle cost.
        base.engine = EngineKind::kFunctional;
    }
    base.spec.tol = 1e-6;
    base.spec.max_iters = 500;

    const std::vector<BenchMatrix> suite =
        ApplySizeMix(LoadSuite(args), load.size_mix);
    std::printf("%d tenants over %zu matrices (%s mix), %.0f%% "
                "warm-start, %d threads/instance, open loop at "
                "%.0f%% of saturation for %.1fs (host has %u "
                "hardware threads)\n\n",
                load.sessions, suite.size(), load.size_mix.c_str(),
                load.warm_frac * 100.0, load.threads_per_instance,
                load.utilization * 100.0, load.duration,
                std::thread::hardware_concurrency());

    std::printf("%-10s %12s %12s %12s %9s %9s %9s %9s\n", "instances",
                "sat-rps", "offered-rps", "achieved", "p50-ms",
                "p99-ms", "p999-ms", "rejected");
    std::vector<FleetRow> rows;
    for (const int n : load.instances) {
        const FleetRow row =
            RunInstancePoint(n, load, args, suite, base);
        std::printf("%-10d %12.1f %12.1f %12.1f %9.2f %9.2f %9.2f "
                    "%9lld\n",
                    row.instances, row.saturation_rps,
                    row.offered_rps, row.achieved_rps, row.p50_ms,
                    row.p99_ms, row.p999_ms,
                    static_cast<long long>(row.rejected));
        rows.push_back(row);
    }

    // Scaling footer: saturation throughput relative to 1 instance.
    const FleetRow* one = nullptr;
    for (const FleetRow& r : rows) {
        if (r.instances == 1) {
            one = &r;
        }
    }
    if (one != nullptr && rows.size() > 1) {
        std::printf("\nsaturation scaling vs 1 instance:\n");
        for (const FleetRow& r : rows) {
            if (r.instances == 1) {
                continue;
            }
            std::printf("%-10d %11.2fx\n", r.instances,
                        r.saturation_rps / one->saturation_rps);
        }
        std::printf("(>= 1.7x at 2 instances on a multi-core host; "
                    "flat on a single core, where instances share "
                    "the one hardware thread)\n");
    }
    return 0;
}
