/**
 * @file
 * Fig 22: Azul end-to-end runtime breakdown by kernel (SpTRSV /
 * SpMV / vector ops). The paper: SpMV and SpTRSV still dominate after
 * acceleration, with SpTRSV's share largest on parallelism-limited
 * matrices.
 */
#include "common.h"

using namespace azul;
using namespace azul::bench;

int
main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner("Fig 22: Azul runtime breakdown by kernel",
                "SpTRSV's share is largest on the parallelism-limited "
                "(left) matrices",
                args);

    std::printf("%-16s %10s %10s %10s\n", "matrix", "SpTRSV", "SpMV",
                "VectorOps");
    for (const BenchMatrix& bm : LoadSuite(args)) {
        KernelMetricsObserver metrics;
        const SolveReport rep =
            RunConfig(bm.a, bm.b, BaseOptions(args), {&metrics});
        const double total =
            static_cast<double>(rep.run.stats.cycles);
        const double sptrsv = static_cast<double>(
            metrics.row(KernelClass::kSpTRSVForward).cycles +
            metrics.row(KernelClass::kSpTRSVBackward).cycles);
        const double spmv = static_cast<double>(
            metrics.row(KernelClass::kSpMV).cycles);
        const double vec = static_cast<double>(
            metrics.row(KernelClass::kVectorOp).cycles);
        std::printf("%-16s %9.1f%% %9.1f%% %9.1f%%\n",
                    bm.name.c_str(), sptrsv / total * 100.0,
                    spmv / total * 100.0, vec / total * 100.0);
    }
    return 0;
}
