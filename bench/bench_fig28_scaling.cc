/**
 * @file
 * Fig 28: scaled-up Azul systems. Runs the suite on grid/2, grid, and
 * grid*2 machines. The paper's shape: high-parallelism matrices gain
 * >2x per 4x tile scaling, while parallelism-limited ones (the nd12k
 * analog) plateau.
 */
#include "common.h"

using namespace azul;
using namespace azul::bench;

int
main(int argc, char** argv)
{
    BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner("Fig 28: scaling up the machine",
                "parallel matrices scale >2x per 4x tiles; "
                "parallelism-limited ones plateau (nd12k analog)",
                args);

    const auto suite = LoadSuite(args);
    const std::int32_t grids[3] = {args.grid / 2, args.grid,
                                   args.grid * 2};
    std::printf("%-16s %5s", "matrix", "class");
    for (const std::int32_t g : grids) {
        std::printf(" %7dx%-4d", g, g);
    }
    std::printf("%12s\n", "scaling");
    for (const BenchMatrix& bm : suite) {
        std::printf("%-16s %5d", bm.name.c_str(),
                    bm.parallelism_class);
        double first = 0.0;
        double last = 0.0;
        for (const std::int32_t g : grids) {
            AzulOptions opts = BaseOptions(args);
            opts.sim.grid_width = g;
            opts.sim.grid_height = g;
            const double gflops =
                RunConfig(bm.a, bm.b, opts).gflops;
            if (g == grids[0]) {
                first = gflops;
            }
            last = gflops;
            std::printf(" %11.1f", gflops);
        }
        std::printf(" %10.2fx\n", last / first);
    }
    std::printf("\n(16x total tile scaling across the three "
                "columns)\n");
    return 0;
}
