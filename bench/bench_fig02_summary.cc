/**
 * @file
 * Fig 2: headline summary — gmean GFLOP/s of (1) full Azul, (2) Azul
 * PEs with Dalorex's Round-Robin mapping, (3) Dalorex (scalar cores +
 * Round-Robin), and (4) the GPU model. The paper's ladder is
 * 7640 / 748 / 93 / 35 GFLOP/s: the mapping and the PE each
 * contribute ~10x.
 */
#include "baselines/gpu_model.h"
#include "common.h"
#include "solver/coloring.h"
#include "solver/pcg.h"

using namespace azul;
using namespace azul::bench;

int
main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner("Fig 2: gmean GFLOP/s ladder (Azul / Azul-PEs+RR / "
                "Dalorex / GPU)",
                "paper: 7640 / 748 / 93 / 35 GFLOP/s at 64x64 tiles — "
                "mapping and PE each contribute ~10x",
                args);

    std::vector<double> azul_g;
    std::vector<double> azul_rr_g;
    std::vector<double> dalorex_g;
    std::vector<double> gpu_g;
    for (const BenchMatrix& bm : LoadSuite(args)) {
        // Full Azul.
        AzulOptions azul_opts = BaseOptions(args);
        azul_g.push_back(RunConfig(bm.a, bm.b, azul_opts).gflops);

        // Azul PEs + Dalorex (Round-Robin) mapping.
        AzulOptions rr_opts = BaseOptions(args);
        rr_opts.mapper = MapperKind::kRoundRobin;
        azul_rr_g.push_back(RunConfig(bm.a, bm.b, rr_opts).gflops);

        // Dalorex: scalar cores + Round-Robin + point-to-point sends.
        AzulOptions dal_opts = BaseOptions(args);
        dal_opts.mapper = MapperKind::kRoundRobin;
        dal_opts.sim = DalorexConfig(dal_opts.sim);
        dal_opts.graph.use_trees = false;
        dalorex_g.push_back(RunConfig(bm.a, bm.b, dal_opts).gflops);

        // GPU model (colored operator, like all paper results).
        const ColoredMatrix cm = ColorAndPermute(bm.a);
        const auto precond = MakePreconditioner(
            PreconditionerKind::kIncompleteCholesky, cm.a);
        gpu_g.push_back(
            GpuPcgGflops(cm.a, precond->lower_factor(),
                         PcgIterationFlops(cm.a, *precond).total()));
        std::printf("  [%s done]\n", bm.name.c_str());
    }

    std::printf("\n%-28s %12s\n", "configuration", "gmean GFLOP/s");
    std::printf("%-28s %12.1f\n", "Azul (this grid)",
                GeoMean(azul_g));
    std::printf("%-28s %12.1f\n", "Azul PEs + Dalorex mapping",
                GeoMean(azul_rr_g));
    std::printf("%-28s %12.1f\n", "Dalorex", GeoMean(dalorex_g));
    std::printf("%-28s %12.1f\n", "V100 GPU model", GeoMean(gpu_g));
    std::printf("\nratios: azul/azul+rr = %.1fx, azul/dalorex = "
                "%.1fx, azul/gpu = %.1fx\n",
                GeoMean(azul_g) / GeoMean(azul_rr_g),
                GeoMean(azul_g) / GeoMean(dalorex_g),
                GeoMean(azul_g) / GeoMean(gpu_g));
    return 0;
}
