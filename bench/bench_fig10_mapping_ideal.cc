/**
 * @file
 * Fig 10: PCG throughput with *idealized PEs* under Round-Robin,
 * Block, and Azul mappings — isolating the network as the bottleneck.
 * The paper: prior mappings deliver only a fraction of peak even with
 * infinitely fast PEs; the Azul mapping makes matrices compute-bound.
 */
#include "common.h"

using namespace azul;
using namespace azul::bench;

int
main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner("Fig 10: idealized-PE throughput under different "
                "mappings",
                "with infinitely fast PEs, Round-Robin/Block remain "
                "NoC-bound; Azul mapping is far faster",
                args);

    std::printf("%-16s %14s %14s %14s\n", "matrix", "round-robin",
                "block", "azul");
    std::vector<double> rr_g;
    std::vector<double> blk_g;
    std::vector<double> azul_g;
    for (const BenchMatrix& bm : LoadSuite(args)) {
        double gflops[3] = {};
        const MapperKind kinds[3] = {MapperKind::kRoundRobin,
                                     MapperKind::kBlock,
                                     MapperKind::kAzul};
        for (int i = 0; i < 3; ++i) {
            AzulOptions opts = BaseOptions(args);
            opts.mapper = kinds[i];
            opts.sim = IdealPeConfig(opts.sim);
            gflops[i] = RunConfig(bm.a, bm.b, opts).gflops;
        }
        rr_g.push_back(gflops[0]);
        blk_g.push_back(gflops[1]);
        azul_g.push_back(gflops[2]);
        std::printf("%-16s %14.1f %14.1f %14.1f\n", bm.name.c_str(),
                    gflops[0], gflops[1], gflops[2]);
    }
    std::printf("\n");
    PrintGmean("round-robin", rr_g);
    PrintGmean("block", blk_g);
    PrintGmean("azul", azul_g);
    std::printf("azul vs round-robin: %.1fx, vs block: %.1fx\n",
                GeoMean(azul_g) / GeoMean(rr_g),
                GeoMean(azul_g) / GeoMean(blk_g));
    return 0;
}
