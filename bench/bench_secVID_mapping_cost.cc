/**
 * @file
 * Sec VI-D: data-mapping algorithm costs. The paper: hypergraph
 * mapping averages 6.16 min per matrix at 4096 PEs vs 0.25 min
 * (Block), 1.9 min (Round-Robin incl. tree construction), 0.6 min
 * (SparseP) — costlier, but amortized over hours-long simulations.
 *
 * This bench covers the three cost levers around that number:
 *   1. absolute mapping + tree-build cost per strategy (the paper's
 *      table), optionally served from the persistent mapping cache
 *      (--cache): the cross-run half of the amortization argument;
 *   2. where the hypergraph mapper's time goes — partitioner phase
 *      breakdown (coarsen / initial / refine / extract);
 *   3. how much the task-tree parallel partitioner (--threads=N)
 *      shaves off the remaining cold-run cost, with the bit-identical
 *      output cross-checked against the serial run.
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <utility>

#include "common.h"
#include "dataflow/program.h"
#include "mapping/mapping_cache.h"
#include "solver/coloring.h"
#include "solver/ic0.h"

using namespace azul;
using namespace azul::bench;

namespace {

double
SecondsSince(const std::chrono::steady_clock::time_point& t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** AzulMapperOptions a bench run hands to kAzul mappers. */
AzulMapperOptions
MapperOptions(const BenchArgs& args)
{
    AzulMapperOptions mopts;
    mopts.partitioner.threads = args.threads;
    return mopts;
}

} // namespace

int
main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner("Sec VI-D: mapping + compilation cost by strategy",
                "hypergraph mapping is the costliest but amortizes "
                "over long-running solves (paper: 6.16 min avg at "
                "4096 PEs)",
                args);

    MappingCache cache(args.cache_dir);
    if (cache.enabled()) {
        std::printf("mapping cache: %s\n", cache.dir().c_str());
    }

    // ---- 1. Cost per strategy (the paper's comparison) ------------------
    std::printf("%-16s %12s %12s %12s %12s\n", "matrix", "rrobin(s)",
                "block(s)", "sparsep(s)", "azul(s)");
    std::vector<double> totals(4, 0.0);
    const auto suite = LoadSuite(args);
    for (const BenchMatrix& bm : suite) {
        const ColoredMatrix cm = ColorAndPermute(bm.a);
        const CsrMatrix l = IncompleteCholesky(cm.a);
        MappingProblem prob;
        prob.a = &cm.a;
        prob.l = &l;
        double secs[4] = {};
        const MapperKind kinds[4] = {
            MapperKind::kRoundRobin, MapperKind::kBlock,
            MapperKind::kSparseP, MapperKind::kAzul};
        const AzulMapperOptions mopts = MapperOptions(args);
        const std::int32_t tiles = args.grid * args.grid;
        for (int i = 0; i < 4; ++i) {
            const auto t0 = std::chrono::steady_clock::now();
            const auto mapper = MakeMapper(kinds[i], mopts);
            DataMapping mapping;
            // A cache hit replaces the mapping computation; the load
            // time stays charged to the mapping step.
            const std::uint64_t key =
                cache.enabled() ? MappingCacheKey(prob, mapper->name(),
                                                  tiles, mopts)
                                : 0;
            auto cached = cache.enabled()
                              ? cache.TryLoad(key, prob, tiles)
                              : std::nullopt;
            if (cached.has_value()) {
                mapping = *std::move(cached);
            } else {
                mapping = mapper->Map(prob, tiles);
                if (cache.enabled()) {
                    cache.Store(key, mapping);
                }
            }
            // Mapping cost includes communication-tree construction
            // (the paper charges tree building to the mapping step).
            ProgramBuildInputs in;
            in.a = &cm.a;
            in.l = &l;
            in.precond = PreconditionerKind::kIncompleteCholesky;
            in.mapping = &mapping;
            in.geom = TorusGeometry{args.grid, args.grid};
            const SolverProgram prog = BuildSolverProgram(SolverKind::kPcg, in);
            secs[i] = SecondsSince(t0);
            totals[static_cast<std::size_t>(i)] += secs[i];
        }
        std::printf("%-16s %12.3f %12.3f %12.3f %12.3f\n",
                    bm.name.c_str(), secs[0], secs[1], secs[2],
                    secs[3]);
    }
    std::printf("\n%-16s %12.3f %12.3f %12.3f %12.3f\n", "mean",
                totals[0] / static_cast<double>(suite.size()),
                totals[1] / static_cast<double>(suite.size()),
                totals[2] / static_cast<double>(suite.size()),
                totals[3] / static_cast<double>(suite.size()));

    // ---- 2. Partitioner phase breakdown ---------------------------------
    std::printf("\npartitioner phase breakdown (azul mapper, "
                "threads=%d; work seconds, summed over workers)\n",
                args.threads);
    std::printf("%-16s %10s %10s %10s %10s %10s %10s\n", "matrix",
                "coarsen", "initial", "refine", "fm", "extract",
                "total");
    for (const BenchMatrix& bm : suite) {
        const ColoredMatrix cm = ColorAndPermute(bm.a);
        const CsrMatrix l = IncompleteCholesky(cm.a);
        MappingProblem prob;
        prob.a = &cm.a;
        prob.l = &l;
        const AzulMapperOptions mopts = MapperOptions(args);
        const AzulMapper mapper(mopts);
        Hypergraph hg = mapper.BuildHypergraph(prob);
        PartitionPhaseStats phases;
        PartitionHypergraph(hg, args.grid * args.grid,
                            mopts.partitioner, &phases);
        // "fm" is the FmRefineBisection time inside initial+refine
        // (a sub-measure, not part of total).
        std::printf("%-16s %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
                    bm.name.c_str(), phases.coarsen.seconds(),
                    phases.initial.seconds(), phases.refine.seconds(),
                    phases.fm_refine.seconds(),
                    phases.extract.seconds(), phases.total());
    }

    // ---- 3. Parallel partitioner speedup --------------------------------
    // A large 3D-grid Laplacian (the suite's hardest shape for the
    // partitioner) measured serial vs --threads=N, cross-checking the
    // bit-identical contract.
    {
        const std::int32_t nx = std::max<std::int32_t>(
            6, static_cast<std::int32_t>(
                   std::lround(18.0 * std::cbrt(args.scale))));
        CsrMatrix a = Grid3dLaplacian(nx, nx, nx);
        const ColoredMatrix cm = ColorAndPermute(a);
        const CsrMatrix l = IncompleteCholesky(cm.a);
        MappingProblem prob;
        prob.a = &cm.a;
        prob.l = &l;
        AzulMapperOptions mopts = MapperOptions(args);
        const AzulMapper mapper(mopts);
        Hypergraph hg = mapper.BuildHypergraph(prob);
        const std::int32_t k = args.grid * args.grid;

        std::printf("\nparallel partitioner, 3d grid %dx%dx%d "
                    "(%lld vertices, k=%d)\n",
                    nx, nx, nx,
                    static_cast<long long>(hg.NumVertices()), k);
        std::printf("%10s %12s %10s\n", "threads", "wall(s)",
                    "speedup");
        PartitionerOptions popts = mopts.partitioner;
        popts.threads = 1;
        auto t0 = std::chrono::steady_clock::now();
        const auto serial = PartitionHypergraph(hg, k, popts);
        const double serial_s = SecondsSince(t0);
        std::printf("%10d %12.3f %9.2fx\n", 1, serial_s, 1.0);
        if (args.threads > 1) {
            popts.threads = args.threads;
            t0 = std::chrono::steady_clock::now();
            const auto parallel = PartitionHypergraph(hg, k, popts);
            const double parallel_s = SecondsSince(t0);
            std::printf("%10d %12.3f %9.2fx\n", args.threads,
                        parallel_s, serial_s / parallel_s);
            std::printf("partitions bit-identical: %s\n",
                        serial == parallel ? "yes" : "NO (BUG)");
        }
    }

    if (cache.enabled()) {
        std::printf("\ncache-hits=%d cache-misses=%d\n", cache.hits(),
                    cache.misses());
    }
    return 0;
}
