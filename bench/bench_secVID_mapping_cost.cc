/**
 * @file
 * Sec VI-D: data-mapping algorithm costs. The paper: hypergraph
 * mapping averages 6.16 min per matrix at 4096 PEs vs 0.25 min
 * (Block), 1.9 min (Round-Robin incl. tree construction), 0.6 min
 * (SparseP) — costlier, but amortized over hours-long simulations.
 */
#include <chrono>

#include "common.h"
#include "dataflow/program.h"
#include "solver/coloring.h"
#include "solver/ic0.h"

using namespace azul;
using namespace azul::bench;

int
main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner("Sec VI-D: mapping + compilation cost by strategy",
                "hypergraph mapping is the costliest but amortizes "
                "over long-running solves (paper: 6.16 min avg at "
                "4096 PEs)",
                args);

    std::printf("%-16s %12s %12s %12s %12s\n", "matrix", "rrobin(s)",
                "block(s)", "sparsep(s)", "azul(s)");
    std::vector<double> totals(4, 0.0);
    const auto suite = LoadSuite(args);
    for (const BenchMatrix& bm : suite) {
        const ColoredMatrix cm = ColorAndPermute(bm.a);
        const CsrMatrix l = IncompleteCholesky(cm.a);
        MappingProblem prob;
        prob.a = &cm.a;
        prob.l = &l;
        double secs[4] = {};
        const MapperKind kinds[4] = {
            MapperKind::kRoundRobin, MapperKind::kBlock,
            MapperKind::kSparseP, MapperKind::kAzul};
        for (int i = 0; i < 4; ++i) {
            const auto t0 = std::chrono::steady_clock::now();
            const auto mapper = MakeMapper(kinds[i]);
            const DataMapping mapping =
                mapper->Map(prob, args.grid * args.grid);
            // Mapping cost includes communication-tree construction
            // (the paper charges tree building to the mapping step).
            ProgramBuildInputs in;
            in.a = &cm.a;
            in.l = &l;
            in.precond = PreconditionerKind::kIncompleteCholesky;
            in.mapping = &mapping;
            in.geom = TorusGeometry{args.grid, args.grid};
            const PcgProgram prog = BuildPcgProgram(in);
            secs[i] = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
            totals[static_cast<std::size_t>(i)] += secs[i];
        }
        std::printf("%-16s %12.3f %12.3f %12.3f %12.3f\n",
                    bm.name.c_str(), secs[0], secs[1], secs[2],
                    secs[3]);
    }
    std::printf("\n%-16s %12.3f %12.3f %12.3f %12.3f\n", "mean",
                totals[0] / static_cast<double>(suite.size()),
                totals[1] / static_cast<double>(suite.size()),
                totals[2] / static_cast<double>(suite.size()),
                totals[3] / static_cast<double>(suite.size()));
    return 0;
}
