/**
 * @file
 * Fig 20: end-to-end PCG speedup over the GPU baseline for ALRESCHA,
 * Dalorex, and Azul, per matrix (sorted by available parallelism) and
 * in gmean. Paper gmeans at 64x64 tiles: Azul 217x, ALRESCHA ~1.4x,
 * Dalorex ~2.4x over the GPU.
 */
#include "baselines/alrescha_model.h"
#include "baselines/gpu_model.h"
#include "common.h"
#include "solver/coloring.h"
#include "solver/pcg.h"

using namespace azul;
using namespace azul::bench;

int
main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner("Fig 20: end-to-end speedup over the GPU baseline",
                "Azul >> Dalorex > ALRESCHA > GPU on every matrix; "
                "matrices sorted by available parallelism",
                args);

    std::printf("%-16s %12s %12s %12s\n", "matrix", "ALRESCHA",
                "Dalorex", "Azul");
    std::vector<double> alr_s;
    std::vector<double> dal_s;
    std::vector<double> azul_s;
    for (const BenchMatrix& bm : LoadSuite(args)) {
        const ColoredMatrix cm = ColorAndPermute(bm.a);
        const auto precond = MakePreconditioner(
            PreconditionerKind::kIncompleteCholesky, cm.a);
        const CsrMatrix* l = precond->lower_factor();
        const double flops = PcgIterationFlops(cm.a, *precond).total();
        const double gpu = GpuPcgGflops(cm.a, l, flops);
        const double alr = AlreschaPcgGflops(cm.a, l, flops);

        AzulOptions dal_opts = BaseOptions(args);
        dal_opts.mapper = MapperKind::kRoundRobin;
        dal_opts.sim = DalorexConfig(dal_opts.sim);
        dal_opts.graph.use_trees = false;
        const double dal = RunConfig(bm.a, bm.b, dal_opts).gflops;

        const double azul_gflops =
            RunConfig(bm.a, bm.b, BaseOptions(args)).gflops;

        alr_s.push_back(alr / gpu);
        dal_s.push_back(dal / gpu);
        azul_s.push_back(azul_gflops / gpu);
        std::printf("%-16s %11.1fx %11.1fx %11.1fx\n",
                    bm.name.c_str(), alr / gpu, dal / gpu,
                    azul_gflops / gpu);
    }
    std::printf("\n");
    PrintGmean("ALRESCHA speedup", alr_s);
    PrintGmean("Dalorex speedup", dal_s);
    PrintGmean("Azul speedup", azul_s);
    std::printf("Azul vs Dalorex: %.1fx, vs ALRESCHA: %.1fx\n",
                GeoMean(azul_s) / GeoMean(dal_s),
                GeoMean(azul_s) / GeoMean(alr_s));
    return 0;
}
