/**
 * @file
 * Ablation (beyond the paper's figures): torus vs mesh interconnect.
 * The paper's machine is a 2-D torus (Sec V-B); Cerebras-class
 * machines use meshes. Wraparound halves worst-case distances and
 * doubles bisection, so the torus should win — by more under
 * traffic-heavy mappings.
 */
#include "common.h"

using namespace azul;
using namespace azul::bench;

int
main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner("Ablation: torus (paper) vs mesh interconnect",
                "wraparound links help most when the mapping leaves "
                "traffic on the network",
                args);

    std::printf("%-16s %12s %12s %10s %14s %14s\n", "matrix",
                "torus", "mesh", "gain", "torus(RRmap)",
                "mesh(RRmap)");
    std::vector<double> torus_g;
    std::vector<double> mesh_g;
    std::vector<double> torus_rr_g;
    std::vector<double> mesh_rr_g;
    for (const BenchMatrix& bm : LoadSuite(args)) {
        const auto run = [&](bool torus, MapperKind kind) {
            AzulOptions opts = BaseOptions(args);
            opts.sim.torus = torus;
            opts.mapper = kind;
            return RunConfig(bm.a, bm.b, opts).gflops;
        };
        const double torus_gf = run(true, MapperKind::kAzul);
        const double mesh_gf = run(false, MapperKind::kAzul);
        const double torus_rr = run(true, MapperKind::kRoundRobin);
        const double mesh_rr = run(false, MapperKind::kRoundRobin);
        torus_g.push_back(torus_gf);
        mesh_g.push_back(mesh_gf);
        torus_rr_g.push_back(torus_rr);
        mesh_rr_g.push_back(mesh_rr);
        std::printf("%-16s %12.1f %12.1f %9.2fx %14.1f %14.1f\n",
                    bm.name.c_str(), torus_gf, mesh_gf,
                    torus_gf / mesh_gf, torus_rr, mesh_rr);
    }
    std::printf("\n");
    PrintGmean("torus (azul map)", torus_g);
    PrintGmean("mesh (azul map)", mesh_g);
    PrintGmean("torus (RR map)", torus_rr_g);
    PrintGmean("mesh (RR map)", mesh_rr_g);
    std::printf("torus gain: %.2fx (azul map), %.2fx (RR map)\n",
                GeoMean(torus_g) / GeoMean(mesh_g),
                GeoMean(torus_rr_g) / GeoMean(mesh_rr_g));
    return 0;
}
