/**
 * @file
 * Table V: area breakdown of the 4096-tile Azul configuration at 7nm.
 * Paper: PEs 17.8 mm², routers 6.6 mm², SRAMs 115.2 mm², I/O 15 mm²,
 * total ~155 mm².
 */
#include "common.h"
#include "energy/area_model.h"

using namespace azul;
using namespace azul::bench;

int
main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner("Table V: Azul area estimates (7nm, paper 64x64 "
                "config)",
                "155 mm^2 total; SRAM dominates with ~74%", args);

    const SimConfig cfg = AzulPaperConfig();
    const AreaBreakdown area = ComputeArea(cfg);
    std::printf("%-12s %10s\n", "component", "area mm^2");
    std::printf("%-12s %10.1f\n", "PEs", area.pes_mm2);
    std::printf("%-12s %10.1f\n", "Routers", area.routers_mm2);
    std::printf("%-12s %10.1f\n", "SRAMs", area.srams_mm2);
    std::printf("%-12s %10.1f\n", "I/O", area.io_mm2);
    std::printf("%-12s %10.1f\n", "Total", area.total());
    std::printf("SRAM share: %.0f%%\n",
                area.srams_mm2 / area.total() * 100.0);

    // Also report the scaled bench configuration for context.
    SimConfig bench_cfg;
    bench_cfg.grid_width = args.grid;
    bench_cfg.grid_height = args.grid;
    const AreaBreakdown bench_area = ComputeArea(bench_cfg);
    std::printf("\n(bench-scale %dx%d machine: %.1f mm^2 total)\n",
                args.grid, args.grid, bench_area.total());
    return 0;
}
