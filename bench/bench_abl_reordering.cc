/**
 * @file
 * Ablation (beyond the paper's figures): reordering preprocessing for
 * the SpTRSV kernel — natural order vs RCM (bandwidth-reducing) vs
 * graph coloring (the paper's choice). Coloring is the only one that
 * shortens dependence chains, so it should win decisively on the
 * simulated forward solve; RCM only helps locality.
 */
#include "common.h"
#include "dataflow/program.h"
#include "sim/machine.h"
#include "solver/coloring.h"
#include "solver/ic0.h"
#include "solver/levels.h"
#include "solver/rcm.h"
#include "sparse/triangle.h"

using namespace azul;
using namespace azul::bench;

namespace {

Cycle
ForwardSolveCycles(const CsrMatrix& a, const Vector& r,
                   const BenchArgs& args)
{
    const CsrMatrix l = IncompleteCholesky(a);
    SimConfig cfg;
    cfg.grid_width = args.grid;
    cfg.grid_height = args.grid;
    MappingProblem prob;
    prob.a = &a;
    prob.l = &l;
    AzulMapper mapper;
    const DataMapping mapping = mapper.Map(prob, cfg.num_tiles());
    ProgramBuildInputs in;
    in.a = &a;
    in.l = &l;
    in.precond = PreconditionerKind::kIncompleteCholesky;
    in.mapping = &mapping;
    in.geom = cfg.geometry();
    const SolverProgram prog = BuildSolverProgram(SolverKind::kPcg, in);
    Machine machine(cfg, &prog);
    machine.LoadProblem(Vector(a.rows(), 0.0));
    machine.ScatterVector(VecName::kR, r);
    return machine.RunMatrixKernelStandalone(1).cycles;
}

Index
Levels(const CsrMatrix& a)
{
    return ComputeLowerLevels(LowerTriangle(a)).num_levels;
}

} // namespace

int
main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner("Ablation: reordering preprocessing for SpTRSV "
                "(natural / RCM / coloring)",
                "coloring shortens dependence chains (the paper's "
                "Sec II-A choice); RCM only improves locality",
                args);

    std::printf("%-16s %9s %9s %9s %12s %12s %12s\n", "matrix",
                "lvl:nat", "lvl:rcm", "lvl:col", "cyc:nat",
                "cyc:rcm", "cyc:col");
    for (const BenchMatrix& bm : LoadSuite(args)) {
        const CsrMatrix rcm_a =
            PermuteSymmetric(bm.a, RcmPermutation(bm.a));
        const ColoredMatrix colored = ColorAndPermute(bm.a);

        const Cycle nat = ForwardSolveCycles(bm.a, bm.b, args);
        const Cycle rcm = ForwardSolveCycles(
            rcm_a, PermuteVector(bm.b, RcmPermutation(bm.a)), args);
        const Cycle col = ForwardSolveCycles(
            colored.a, PermuteVector(bm.b, colored.perm), args);
        std::printf("%-16s %9lld %9lld %9lld %12llu %12llu %12llu\n",
                    bm.name.c_str(),
                    static_cast<long long>(Levels(bm.a)),
                    static_cast<long long>(Levels(rcm_a)),
                    static_cast<long long>(Levels(colored.a)),
                    static_cast<unsigned long long>(nat),
                    static_cast<unsigned long long>(rcm),
                    static_cast<unsigned long long>(col));
    }
    return 0;
}
