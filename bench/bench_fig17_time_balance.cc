/**
 * @file
 * Fig 17: effect of temporal load balancing on a parallelism-limited
 * SpTRSV. Plots (as text series) instructions issued per cycle bucket
 * for nonzero-balanced (q=0) vs time-balanced (q=5) mappings, and
 * sweeps q. The paper shows time balancing removing a long tail and
 * yielding a 3.5x single-kernel speedup on consph.
 */
#include "common.h"
#include "dataflow/program.h"
#include "mapping/azul_mapper.h"
#include "sim/machine.h"
#include "sim/observer.h"
#include "solver/coloring.h"
#include "solver/ic0.h"

using namespace azul;
using namespace azul::bench;

namespace {

struct ForwardRun {
    Cycle cycles = 0;
    std::vector<std::uint64_t> timeline;
    Cycle period = 0;
};

ForwardRun
RunForwardSolve(const CsrMatrix& a, const CsrMatrix& l, const Vector& r,
                const BenchArgs& args, int quantiles)
{
    SimConfig cfg;
    cfg.grid_width = args.grid;
    cfg.grid_height = args.grid;
    AzulMapperOptions mopts;
    mopts.time_quantiles = quantiles;
    MappingProblem prob;
    prob.a = &a;
    prob.l = &l;
    AzulMapper mapper(mopts);
    const DataMapping mapping = mapper.Map(prob, cfg.num_tiles());
    ProgramBuildInputs in;
    in.a = &a;
    in.l = &l;
    in.precond = PreconditionerKind::kIncompleteCholesky;
    in.mapping = &mapping;
    in.geom = cfg.geometry();
    const SolverProgram prog = BuildSolverProgram(SolverKind::kPcg, in);
    Machine machine(cfg, &prog);
    TimelineObserver timeline(32);
    machine.AttachObserver(&timeline);
    machine.LoadProblem(Vector(a.rows(), 0.0));
    machine.ScatterVector(VecName::kR, r);
    const SimStats stats = machine.RunMatrixKernelStandalone(1);
    return {stats.cycles, timeline.timeline(), timeline.period()};
}

void
PrintSeries(const char* label, const ForwardRun& run)
{
    std::printf("%s: %llu cycles; issued ops per %llu-cycle bucket:\n",
                label, static_cast<unsigned long long>(run.cycles),
                static_cast<unsigned long long>(run.period));
    for (std::size_t i = 0; i < run.timeline.size(); ++i) {
        if (i % 16 == 0) {
            std::printf("  ");
        }
        std::printf("%6llu",
                    static_cast<unsigned long long>(run.timeline[i]));
        if (i % 16 == 15) {
            std::printf("\n");
        }
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner("Fig 17: time balancing of SpTRSV (consph-analog "
                "forward solve)",
                "q=5 quantile balancing removes the long tail of late "
                "instructions (paper: 3.5x on one SpTRSV)",
                args);

    // Parallelism-limited FEM matrix (the consph analog).
    const auto suite = LoadSuite(args);
    const BenchMatrix& bm = suite[0];
    const ColoredMatrix cm = ColorAndPermute(bm.a);
    const CsrMatrix l = IncompleteCholesky(cm.a);
    const Vector r = PermuteVector(bm.b, cm.perm);

    const ForwardRun nnz_balanced =
        RunForwardSolve(cm.a, l, r, args, 0);
    const ForwardRun time_balanced =
        RunForwardSolve(cm.a, l, r, args, 5);
    PrintSeries("nonzero balancing (q=0)", nnz_balanced);
    PrintSeries("time balancing (q=5)", time_balanced);
    std::printf("speedup from time balancing: %.2fx\n\n",
                static_cast<double>(nnz_balanced.cycles) /
                    static_cast<double>(time_balanced.cycles));

    // Quantile-count sweep (ablation from DESIGN.md).
    std::printf("%-8s %12s\n", "q", "cycles");
    for (const int q : {0, 2, 3, 5, 8, 12}) {
        const ForwardRun run = RunForwardSolve(cm.a, l, r, args, q);
        std::printf("%-8d %12llu\n", q,
                    static_cast<unsigned long long>(run.cycles));
    }
    return 0;
}
