/**
 * @file
 * Fig 27: fine-grained multithreading on/off. The paper: the
 * multithreaded PE achieves a 1.5x gmean speedup over single-threaded
 * PEs by hiding accumulator RAW stalls.
 */
#include "common.h"

using namespace azul;
using namespace azul::bench;

int
main(int argc, char** argv)
{
    BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner("Fig 27: multithreaded vs single-threaded PEs",
                "multithreading yields ~1.5x gmean speedup", args);

    const auto suite = LoadSuite(args);
    std::printf("%-16s %12s %12s %10s\n", "matrix", "multi", "single",
                "speedup");
    std::vector<double> mt_g;
    std::vector<double> st_g;
    for (const BenchMatrix& bm : suite) {
        AzulOptions mt = BaseOptions(args);
        AzulOptions st = BaseOptions(args);
        st.sim.multithreading = false;
        const double mt_gf = RunConfig(bm.a, bm.b, mt).gflops;
        const double st_gf = RunConfig(bm.a, bm.b, st).gflops;
        mt_g.push_back(mt_gf);
        st_g.push_back(st_gf);
        std::printf("%-16s %12.1f %12.1f %9.2fx\n", bm.name.c_str(),
                    mt_gf, st_gf, mt_gf / st_gf);
    }
    std::printf("\n");
    PrintGmean("multithreaded", mt_g);
    PrintGmean("single-threaded", st_g);
    std::printf("gmean speedup: %.2fx\n",
                GeoMean(mt_g) / GeoMean(st_g));
    return 0;
}
