/**
 * @file
 * Fig 23: end-to-end PCG throughput under the four mapping
 * strategies: Round-Robin (Dalorex), Block (Tascade/MPI), SparseP
 * (coordinate 2-D chunks), and Azul's hypergraph partitioning. The
 * paper: Azul wins on every matrix — gmean 10.2x over Round-Robin,
 * 13.5x over Block, 25.2x over SparseP. Includes the row-weight
 * ablation (--no-row-weight path also printed).
 */
#include "common.h"

using namespace azul;
using namespace azul::bench;

int
main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner("Fig 23: end-to-end throughput by mapping strategy",
                "azul mapping wins on every matrix (paper gmeans: "
                "10.2x/13.5x/25.2x over RR/Block/SparseP)",
                args);

    std::printf("%-16s %10s %10s %10s %10s %12s\n", "matrix",
                "rrobin", "block", "sparsep", "azul", "azul(norw)");
    std::vector<double> g[5];
    for (const BenchMatrix& bm : LoadSuite(args)) {
        double gflops[5] = {};
        const MapperKind kinds[4] = {
            MapperKind::kRoundRobin, MapperKind::kBlock,
            MapperKind::kSparseP, MapperKind::kAzul};
        for (int i = 0; i < 4; ++i) {
            AzulOptions opts = BaseOptions(args);
            opts.mapper = kinds[i];
            gflops[i] = RunConfig(bm.a, bm.b, opts).gflops;
        }
        // Ablation: equal row/column hyperedge weights (Sec IV-C).
        AzulOptions norw = BaseOptions(args);
        norw.azul_mapper.row_edge_weight = 1;
        gflops[4] = RunConfig(bm.a, bm.b, norw).gflops;

        for (int i = 0; i < 5; ++i) {
            g[i].push_back(gflops[i]);
        }
        std::printf("%-16s %10.1f %10.1f %10.1f %10.1f %12.1f\n",
                    bm.name.c_str(), gflops[0], gflops[1], gflops[2],
                    gflops[3], gflops[4]);
    }
    std::printf("\n");
    PrintGmean("round-robin", g[0]);
    PrintGmean("block", g[1]);
    PrintGmean("sparsep", g[2]);
    PrintGmean("azul", g[3]);
    PrintGmean("azul (no row weight)", g[4]);
    std::printf("azul vs RR: %.1fx, vs block: %.1fx, vs sparsep: "
                "%.1fx\n",
                GeoMean(g[3]) / GeoMean(g[0]),
                GeoMean(g[3]) / GeoMean(g[1]),
                GeoMean(g[3]) / GeoMean(g[2]));
    return 0;
}
