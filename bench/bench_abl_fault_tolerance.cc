/**
 * @file
 * Ablation (beyond the paper's figures): fault-tolerance overhead of
 * the checkpoint/replay robustness layer (docs/ROBUSTNESS.md). Sweeps
 * the per-opportunity fault rate over convergent PCG solves and
 * reports the SimStats fault counters — injections, detections,
 * checkpoints, rollbacks — plus the cycle overhead against the
 * fault-free baseline of the same configuration.
 *
 * The expected shape: at rate 0 the layer is free (checkpoints are
 * host-side snapshots costing no simulated cycles); as the rate rises,
 * overhead grows with the number of replayed iteration windows and
 * with the timing-only faults (PE stalls, NoC retransmissions), until
 * the recovery budget is exhausted and solves start failing.
 *
 * Extra flags on top of the common set:
 *   --faults=SPEC seeds/kinds/interval for the sweep (the rate in the
 *                 spec is ignored; each column sets its own).
 */
#include "common.h"
#include "sim/fault.h"
#include "sim/solver_driver.h"

using namespace azul;
using namespace azul::bench;

namespace {

struct RatePoint {
    double rate;
    SolveReport report;
};

} // namespace

int
main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner("Ablation: fault-injection rate vs checkpoint/replay "
                "recovery cost",
                "transient faults are detected and rolled back; "
                "overhead = replayed iterations + retransmissions",
                args);

    const std::vector<double> rates =
        args.quick ? std::vector<double>{0.0, 1e-5, 1e-4}
                   : std::vector<double>{0.0, 1e-6, 1e-5, 1e-4};

    std::printf("%-16s %8s %5s %6s %6s %6s %6s %6s %12s %9s\n",
                "matrix", "rate", "conv", "iters", "inj", "det",
                "ckpt", "rollb", "cycles", "overhead");
    std::vector<double> overheads;
    for (const BenchMatrix& bm : LoadSuite(args)) {
        AzulOptions base = BaseOptions(args);
        // Convergent mode (unlike the throughput benches): detection
        // and rollback only engage when the driver is actually
        // chasing a tolerance.
        base.spec.tol = 1e-6;
        base.spec.max_iters = args.quick ? 400 : 600;
        // 25 balances recovery granularity against the restart cost:
        // every checkpoint is verified by a true-residual recompute
        // that restarts the PCG recurrence, and restarting too often
        // measurably slows convergence even with zero faults landed.
        if (base.sim.checkpoint_interval == 0) {
            base.sim.checkpoint_interval = 25;
        }
        base.sim.max_recoveries = 100;

        std::vector<RatePoint> points;
        for (double rate : rates) {
            AzulOptions opts = base;
            opts.sim.fault_rate = rate;
            points.push_back({rate, RunConfig(bm.a, bm.b, opts)});
        }

        const double baseline_cycles =
            static_cast<double>(points.front().report.run.stats.cycles);
        for (const RatePoint& p : points) {
            const SimStats& st = p.report.run.stats;
            const double overhead =
                baseline_cycles > 0.0
                    ? 100.0 * (static_cast<double>(st.cycles) /
                                   baseline_cycles -
                               1.0)
                    : 0.0;
            if (p.rate > 0.0) {
                overheads.push_back(
                    static_cast<double>(st.cycles) / baseline_cycles);
            }
            std::printf("%-16s %8.0e %5s %6lld %6llu %6llu %6llu "
                        "%6llu %12llu %8.2f%%\n",
                        bm.name.c_str(), p.rate,
                        p.report.run.converged ? "yes" : "NO",
                        static_cast<long long>(p.report.run.iterations),
                        static_cast<unsigned long long>(
                            st.faults_injected),
                        static_cast<unsigned long long>(
                            st.faults_detected),
                        static_cast<unsigned long long>(st.checkpoints),
                        static_cast<unsigned long long>(st.rollbacks),
                        static_cast<unsigned long long>(st.cycles),
                        overhead);
        }
    }
    PrintGmean("cycle overhead", overheads);
    return 0;
}
