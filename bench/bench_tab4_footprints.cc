/**
 * @file
 * Table IV analog: the benchmark matrices with their A and vector
 * SRAM footprints, and which machine sizes they fit into. The paper
 * groups SuiteSparse matrices by whether they fit 64x64 / 128x128 /
 * 256x256 tile machines; this bench does the same for the synthetic
 * suite against the scaled grids.
 */
#include "common.h"
#include "dataflow/program.h"
#include "sim/sram.h"
#include "solver/coloring.h"
#include "solver/ic0.h"
#include "sparse/matrix_stats.h"
#include "util/strings.h"

using namespace azul;
using namespace azul::bench;

namespace {

/** True if the compiled problem fits the per-tile scratchpads. */
bool
Fits(const CsrMatrix& a, const CsrMatrix& l, std::int32_t grid)
{
    SimConfig cfg;
    cfg.grid_width = grid;
    cfg.grid_height = grid;
    MappingProblem prob;
    prob.a = &a;
    prob.l = &l;
    // Block mapping is fastest and has perfect nnz balance — a good
    // capacity proxy (the azul mapping balances at least as well on
    // constraint 0).
    const DataMapping mapping =
        MakeMapper(MapperKind::kBlock)->Map(prob, cfg.num_tiles());
    ProgramBuildInputs in;
    in.a = &a;
    in.l = &l;
    in.precond = PreconditionerKind::kIncompleteCholesky;
    in.mapping = &mapping;
    in.geom = cfg.geometry();
    const SolverProgram prog = BuildSolverProgram(SolverKind::kPcg, in);
    return ComputeSramUsage(prog, cfg).fits;
}

} // namespace

int
main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner("Table IV analog: matrix footprints and machine-size "
                "fits",
                "matrices grouped by the smallest machine whose "
                "distributed SRAM holds them",
                args);

    const std::int32_t grids[3] = {args.grid / 2, args.grid,
                                   args.grid * 2};
    std::printf("%-16s %10s %12s %10s %10s", "matrix", "n", "nnz",
                "A bytes", "b bytes");
    for (const std::int32_t g : grids) {
        std::printf("  fit %2dx%-2d", g, g);
    }
    std::printf("\n");
    for (const BenchMatrix& bm : LoadSuite(args)) {
        const ColoredMatrix cm = ColorAndPermute(bm.a);
        const CsrMatrix l = IncompleteCholesky(cm.a);
        const MatrixStats s = ComputeMatrixStats(bm.a);
        std::printf("%-16s %10lld %12lld %10s %10s",
                    bm.name.c_str(), static_cast<long long>(s.n),
                    static_cast<long long>(s.nnz),
                    HumanBytes(static_cast<double>(s.matrix_bytes))
                        .c_str(),
                    HumanBytes(static_cast<double>(s.vector_bytes))
                        .c_str());
        for (const std::int32_t g : grids) {
            std::printf("  %9s",
                        Fits(cm.a, l, g) ? "yes" : "NO");
        }
        std::printf("\n");
    }
    return 0;
}
