/**
 * @file
 * Fig 21: Azul PE cycle breakdown — the share of issue slots spent on
 * Add / Fmac / Send / Mul and stalls, per matrix. The paper shows
 * >40% FMAC nearly everywhere, with stalls growing on
 * parallelism-limited matrices.
 */
#include "common.h"

using namespace azul;
using namespace azul::bench;

int
main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner("Fig 21: Azul PE cycle breakdown",
                "FMACs take >40% of issue slots on most matrices; "
                "stalls dominate only when parallelism-limited",
                args);

    std::printf("%-16s %8s %8s %8s %8s %8s\n", "matrix", "Add",
                "Fmac", "Send", "Mul", "Stalls");
    for (const BenchMatrix& bm : LoadSuite(args)) {
        KernelMetricsObserver metrics;
        (void)RunConfig(bm.a, bm.b, BaseOptions(args), {&metrics});
        const KernelMetricsObserver::ClassMetrics s = metrics.Total();
        // Normalize against tile-cycles actually issued or stalled.
        const double denom = static_cast<double>(
            s.ops.total() + s.stall_cycles);
        std::printf("%-16s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
                    bm.name.c_str(),
                    static_cast<double>(s.ops.add) / denom * 100.0,
                    static_cast<double>(s.ops.fmac) / denom * 100.0,
                    static_cast<double>(s.ops.send) / denom * 100.0,
                    static_cast<double>(s.ops.mul) / denom * 100.0,
                    static_cast<double>(s.stall_cycles) / denom *
                        100.0);
    }
    return 0;
}
