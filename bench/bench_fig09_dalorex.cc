/**
 * @file
 * Fig 9: Dalorex performance running PCG — absolute GFLOP/s and
 * fraction of its (identical to Azul's) peak. The paper: at most
 * 187 GFLOP/s, ~1% of the 16 TFLOP/s peak.
 */
#include "common.h"

using namespace azul;
using namespace azul::bench;

int
main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner("Fig 9: Dalorex (scalar cores + Round-Robin mapping) "
                "on PCG",
                "Dalorex reaches only ~1% of the all-SRAM machine's "
                "peak",
                args);

    std::printf("%-16s %12s %12s\n", "matrix", "GFLOP/s",
                "% of peak");
    std::vector<double> gflops_all;
    for (const BenchMatrix& bm : LoadSuite(args)) {
        AzulOptions opts = BaseOptions(args);
        opts.mapper = MapperKind::kRoundRobin;
        opts.sim = DalorexConfig(opts.sim);
        opts.graph.use_trees = false;
        const SolveReport rep = RunConfig(bm.a, bm.b, opts);
        gflops_all.push_back(rep.gflops);
        std::printf("%-16s %12.2f %11.2f%%\n", bm.name.c_str(),
                    rep.gflops, rep.peak_fraction * 100.0);
    }
    PrintGmean("Dalorex GFLOP/s", gflops_all);
    return 0;
}
