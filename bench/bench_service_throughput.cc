/**
 * @file
 * Serving-layer throughput: solves/sec and request latency (p50/p99)
 * of one AzulService under multi-tenant load, swept over service
 * thread counts.
 *
 * Expectation: throughput scales with --service-threads until the
 * host runs out of cores, because sessions are independent and the
 * scheduler overlaps them; per-response *results* are bit-identical
 * at every point of the sweep (tests/test_service.cc asserts this —
 * here we only measure). The 8-thread row should comfortably beat the
 * serial (1-thread) row on any multi-core host.
 *
 * The sweep runs once per execution engine — the cycle-accurate
 * machine and the functional engine (docs/SIMULATOR.md, "Choosing an
 * execution engine") — and reports the functional-vs-cycle solves/sec
 * multiple: the speedup a serving deployment gets from dropping the
 * timing model while keeping bit-identical results. Passing --engine
 * pins a single engine and skips the comparison.
 *
 * Flags (bench/common.h), plus:
 *   --sessions=N    concurrent tenants            (default 6)
 *   --requests=M    solves submitted per tenant   (default 6)
 *
 * The per-tenant matrices reuse the bench suite cycle so tenants are
 * heterogeneous, as in the paper's Sec II-C serving scenario.
 */
#include <chrono>
#include <cstring>
#include <thread>

#include "common.h"
#include "service/azul_service.h"

using namespace azul;
using namespace azul::bench;

namespace {

struct ServeArgs {
    int sessions = 6;
    int requests = 6;
};

/** Strips --sessions/--requests before BenchArgs sees the rest. */
ServeArgs
ParseServeArgs(int& argc, char** argv)
{
    ServeArgs out;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--sessions=", 0) == 0) {
            out.sessions = static_cast<int>(std::stol(arg.substr(11)));
        } else if (arg.rfind("--requests=", 0) == 0) {
            out.requests = static_cast<int>(std::stol(arg.substr(11)));
        } else {
            argv[w++] = argv[i];
        }
    }
    argc = w;
    return out;
}

struct SweepRow {
    int threads = 0;
    double solves_per_sec = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double wall_seconds = 0.0;
};

SweepRow
RunSweepPoint(int service_threads, const ServeArgs& serve,
              const std::vector<BenchMatrix>& suite,
              const AzulOptions& base)
{
    ServiceOptions sopts;
    sopts.num_threads = service_threads;
    sopts.max_queue =
        static_cast<std::size_t>(serve.sessions * serve.requests);
    std::unique_ptr<AzulService> svc = *AzulService::Create(sopts);

    std::vector<SessionId> ids;
    std::vector<const BenchMatrix*> mats;
    for (int s = 0; s < serve.sessions; ++s) {
        const BenchMatrix& bm =
            suite[static_cast<std::size_t>(s) % suite.size()];
        AzulOptions opts = base;
        const StatusOr<SessionId> id =
            svc->OpenSession(bm.a, opts, bm.name);
        if (!id.ok()) {
            std::fprintf(stderr, "open %s: %s\n", bm.name.c_str(),
                         id.status().ToString().c_str());
            std::exit(1);
        }
        ids.push_back(*id);
        mats.push_back(&bm);
    }

    // Measured region: admission of every request through the last
    // response. Round-robin so all tenants stay loaded.
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<RequestId> reqs;
    for (int r = 0; r < serve.requests; ++r) {
        for (int s = 0; s < serve.sessions; ++s) {
            Vector b = mats[static_cast<std::size_t>(s)]->b;
            const StatusOr<RequestId> id =
                svc->SubmitSolve(ids[static_cast<std::size_t>(s)],
                                 std::move(b));
            if (!id.ok()) {
                std::fprintf(stderr, "submit: %s\n",
                             id.status().ToString().c_str());
                std::exit(1);
            }
            reqs.push_back(*id);
        }
    }
    std::vector<double> latencies_ms;
    latencies_ms.reserve(reqs.size());
    for (const RequestId id : reqs) {
        const StatusOr<SolveResponse> resp = svc->Wait(id);
        if (!resp.ok() || !resp->status.ok()) {
            std::fprintf(stderr, "wait %llu: %s\n",
                         static_cast<unsigned long long>(id),
                         (resp.ok() ? resp->status : resp.status())
                             .ToString()
                             .c_str());
            std::exit(1);
        }
        latencies_ms.push_back(
            (resp->queue_seconds + resp->service_seconds) * 1e3);
    }
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

    SweepRow row;
    row.threads = service_threads;
    row.wall_seconds = wall;
    row.solves_per_sec = static_cast<double>(reqs.size()) / wall;
    row.p50_ms = Percentile(latencies_ms, 50.0);
    row.p99_ms = Percentile(latencies_ms, 99.0);
    return row;
}

/** Runs the thread sweep for one engine; returns solves/sec rows
 *  keyed by thread count. */
std::vector<SweepRow>
RunEngineSweep(EngineKind engine, const ServeArgs& serve,
               const std::vector<BenchMatrix>& suite,
               const AzulOptions& base)
{
    AzulOptions opts = base;
    opts.engine = engine;
    std::printf("engine = %s\n", EngineKindName(engine).c_str());
    std::printf("%-16s %12s %10s %10s %10s %9s\n", "service-threads",
                "solves/sec", "p50-ms", "p99-ms", "wall-s", "vs-1t");
    std::vector<SweepRow> rows;
    double serial_rate = 0.0;
    for (const int threads : {1, 2, 4, 8}) {
        const SweepRow row =
            RunSweepPoint(threads, serve, suite, opts);
        if (threads == 1) {
            serial_rate = row.solves_per_sec;
        }
        std::printf("%-16d %12.2f %10.2f %10.2f %10.2f %8.2fx\n",
                    row.threads, row.solves_per_sec, row.p50_ms,
                    row.p99_ms, row.wall_seconds,
                    row.solves_per_sec / serial_rate);
        rows.push_back(row);
    }
    std::printf("\n");
    return rows;
}

} // namespace

int
main(int argc, char** argv)
{
    ServeArgs serve = ParseServeArgs(argc, argv);
    BenchArgs args = BenchArgs::Parse(argc, argv);
    if (args.quick) {
        serve.sessions = 3;
        serve.requests = 3;
    }
    PrintBanner(
        "service throughput: multi-tenant solves/sec vs scheduler "
        "threads, per execution engine",
        "independent sessions overlap; results stay bit-identical "
        "(test_service); the functional engine trades the timing "
        "model for serving throughput",
        args);

    const std::vector<BenchMatrix> suite = LoadSuite(args);
    AzulOptions base = BaseOptions(args);
    // Serving benches measure latency under convergence, not fixed
    // iteration counts.
    base.spec.tol = 1e-6;
    base.spec.max_iters = 500;

    std::printf("%d sessions x %d requests, matrices cycled from the "
                "%zu-matrix suite (host has %u hardware threads; "
                "scaling flattens beyond that)\n\n",
                serve.sessions, serve.requests, suite.size(),
                std::thread::hardware_concurrency());

    if (!args.engine.empty()) {
        // Pinned engine: single sweep, no comparison.
        RunEngineSweep(base.engine, serve, suite, base);
        std::printf("(vs-1t > 1 means the shared scheduler beats "
                    "serial submission)\n");
        return 0;
    }

    const std::vector<SweepRow> cycle =
        RunEngineSweep(EngineKind::kCycle, serve, suite, base);
    const std::vector<SweepRow> functional =
        RunEngineSweep(EngineKind::kFunctional, serve, suite, base);

    std::printf("functional-vs-cycle solves/sec multiple:\n");
    std::vector<double> multiples;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
        const double m =
            functional[i].solves_per_sec / cycle[i].solves_per_sec;
        multiples.push_back(m);
        std::printf("%-16d %11.1fx\n", cycle[i].threads, m);
    }
    PrintGmean("functional/cycle", multiples);
    std::printf("\n(vs-1t > 1 means the shared scheduler beats "
                "serial submission; the functional/cycle multiple is "
                "the cost of cycle accuracy)\n");
    return 0;
}
