/**
 * @file
 * Fig 1: performance of a V100 GPU running PCG (Ginkgo Cg) on
 * representative matrices — absolute GFLOP/s and fraction of the
 * 7 TFLOP/s FP64 peak. The paper's headline: even the most favorable
 * matrix reaches only ~0.6% of peak.
 */
#include "baselines/gpu_model.h"
#include "common.h"
#include "solver/coloring.h"
#include "solver/pcg.h"

using namespace azul;
using namespace azul::bench;

int
main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner("Fig 1: GPU (V100 + Ginkgo PCG) utilization",
                "GPU achieves <= ~0.6% of its FP64 peak on all "
                "matrices",
                args);

    const GpuModelConfig gpu;
    std::printf("%-16s %-22s %10s %10s\n", "matrix", "analog-of",
                "GFLOP/s", "% of peak");
    std::vector<double> gflops_all;
    for (const BenchMatrix& bm : LoadSuite(args)) {
        // The paper's GPU numbers use colored+permuted matrices.
        const ColoredMatrix cm = ColorAndPermute(bm.a);
        const auto precond = MakePreconditioner(
            PreconditionerKind::kIncompleteCholesky, cm.a);
        const CsrMatrix* l = precond->lower_factor();
        const double flops = PcgIterationFlops(cm.a, *precond).total();
        const double gflops = GpuPcgGflops(cm.a, l, flops, gpu);
        gflops_all.push_back(gflops);
        std::printf("%-16s %-22s %10.3f %9.3f%%\n", bm.name.c_str(),
                    bm.analog_of.c_str(), gflops,
                    gflops / gpu.peak_gflops * 100.0);
    }
    PrintGmean("GPU GFLOP/s", gflops_all);
    return 0;
}
