/**
 * @file
 * bench_timestep — warm vs. cold iterations-to-converge and solve
 * throughput over a value-evolving Laplacian campaign
 * (docs/TIMESTEPPING.md; the Sec II-C physical-simulation use case
 * where one mapping serves many timesteps).
 *
 * For each execution engine (cycle and functional, or just --engine)
 * the bench drives a cold system and a warm_start system through the
 * same 100-step sequence: a 2-D grid Laplacian whose values drift
 * smoothly each step (UpdateValues), solved to a fixed tolerance.
 * Reported per engine/mode: mean iterations per step, total
 * iterations, and end-to-end solves per second. The takeaway is the
 * warm/cold iteration ratio — warm starts resume from the previous
 * step's solution, so slow value drift means a small initial residual
 * and strictly less work per step.
 *
 * Extra flag on top of the common set: --steps=N (default 100,
 * --quick preset 12).
 */
#include <chrono>
#include <cmath>
#include <vector>

#include "common.h"

using namespace azul;
using namespace azul::bench;

namespace {

constexpr double kDriftAmplitude = 0.05;
constexpr int kDriftPeriod = 40;

struct ModeResult {
    double mean_iters = 0.0;
    long long total_iters = 0;
    double solves_per_sec = 0.0;
    bool all_converged = true;
};

/** Runs the full campaign on one system configuration. */
ModeResult
RunSequence(const CsrMatrix& base, const Vector& b,
            const AzulOptions& opts, int steps)
{
    AzulSystem sys = MakeSystemOrDie(base, opts);
    ModeResult result;
    const auto start = std::chrono::steady_clock::now();
    for (int t = 0; t < steps; ++t) {
        if (t > 0) {
            const double scale =
                1.0 + kDriftAmplitude *
                          std::sin(2.0 * M_PI * t / kDriftPeriod);
            CsrMatrix at = base;
            for (double& v : at.mutable_vals()) {
                v *= scale;
            }
            const Status st = sys.UpdateValues(at);
            if (!st.ok()) {
                std::fprintf(stderr, "UpdateValues: %s\n",
                             st.ToString().c_str());
                std::exit(1);
            }
        }
        const SolveReport report = sys.Solve(b);
        result.total_iters +=
            static_cast<long long>(report.run.iterations);
        result.all_converged &= report.run.converged;
    }
    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    result.mean_iters = static_cast<double>(result.total_iters) /
                        static_cast<double>(steps);
    result.solves_per_sec =
        seconds > 0.0 ? static_cast<double>(steps) / seconds : 0.0;
    return result;
}

} // namespace

int
main(int argc, char** argv)
{
    // Peel off the bench-specific --steps flag before the common
    // parser (which rejects unknown arguments).
    int steps = 0;
    std::vector<char*> common_argv{argv[0]};
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--steps=", 0) == 0) {
            steps = static_cast<int>(std::stol(arg.substr(8)));
        } else {
            common_argv.push_back(argv[i]);
        }
    }
    BenchArgs args = BenchArgs::Parse(
        static_cast<int>(common_argv.size()), common_argv.data());
    if (steps <= 0) {
        steps = args.quick ? 12 : 100;
    }

    // Convergence mode, unlike the throughput benches: the metric is
    // iterations-to-converge, so tol must be real.
    AzulOptions opts = BaseOptions(args);
    opts.spec.tol = 1e-8;
    opts.spec.max_iters = 2000;

    const Index side = static_cast<Index>(
        std::max(8.0, std::floor(32.0 * std::sqrt(args.scale))));
    const CsrMatrix base = Grid2dLaplacian(side, side);
    Rng rng(0xb0b);
    Vector b(static_cast<std::size_t>(base.rows()));
    for (double& v : b) {
        v = rng.UniformDouble(-1.0, 1.0);
    }

    PrintBanner(
        "bench_timestep -- warm vs. cold over an evolving Laplacian "
        "(docs/TIMESTEPPING.md)",
        "warm-starting each timestep from the previous solution cuts "
        "iterations-to-converge (Sec II-C)",
        args);
    std::printf("campaign: %lldx%lld grid Laplacian (%lld unknowns), "
                "%d steps, +/-%.0f%% value drift\n",
                static_cast<long long>(side),
                static_cast<long long>(side),
                static_cast<long long>(base.rows()), steps,
                100.0 * kDriftAmplitude);
    std::printf("%-12s %-6s %12s %12s %12s %10s\n", "engine", "mode",
                "mean-iters", "total-iters", "solves/s", "converged");

    std::vector<std::string> engines;
    if (!args.engine.empty()) {
        engines.push_back(args.engine);
    } else {
        engines = {"cycle", "functional"};
    }

    std::vector<double> ratios;
    bool warm_always_fewer = true;
    for (const std::string& engine : engines) {
        AzulOptions eopts = opts;
        ParseEngineKind(engine, eopts.engine);

        AzulOptions cold_opts = eopts;
        cold_opts.warm_start = false;
        AzulOptions warm_opts = eopts;
        warm_opts.warm_start = true;

        const ModeResult cold =
            RunSequence(base, b, cold_opts, steps);
        const ModeResult warm =
            RunSequence(base, b, warm_opts, steps);
        std::printf("%-12s %-6s %12.2f %12lld %12.2f %10s\n",
                    engine.c_str(), "cold", cold.mean_iters,
                    cold.total_iters, cold.solves_per_sec,
                    cold.all_converged ? "yes" : "NO");
        std::printf("%-12s %-6s %12.2f %12lld %12.2f %10s\n",
                    engine.c_str(), "warm", warm.mean_iters,
                    warm.total_iters, warm.solves_per_sec,
                    warm.all_converged ? "yes" : "NO");
        if (cold.mean_iters > 0.0) {
            ratios.push_back(warm.mean_iters / cold.mean_iters);
        }
        warm_always_fewer &= warm.total_iters < cold.total_iters &&
                             cold.all_converged &&
                             warm.all_converged;
    }

    PrintGmean("warm/cold iters", ratios);
    std::printf("warm start %s mean iterations on every engine\n",
                warm_always_fewer ? "reduced" : "DID NOT reduce");
    return warm_always_fewer ? 0 : 1;
}
