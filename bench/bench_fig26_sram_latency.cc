/**
 * @file
 * Fig 26: sensitivity of gmean throughput to scratchpad access
 * latency (1-4 cycles). The paper: ~3% degradation per extra cycle —
 * fine-grained multithreading hides the latency.
 */
#include "common.h"

using namespace azul;
using namespace azul::bench;

int
main(int argc, char** argv)
{
    BenchArgs args = BenchArgs::Parse(argc, argv);
    PrintBanner("Fig 26: SRAM access-latency sweep",
                "gmean throughput degrades only ~3% per extra cycle",
                args);

    const auto suite = LoadSuite(args);
    std::printf("%-12s %16s %12s\n", "SRAM cycles", "gmean GFLOP/s",
                "vs 1 cycle");
    double base = 0.0;
    for (const std::int32_t lat : {1, 2, 3, 4}) {
        std::vector<double> gflops;
        for (const BenchMatrix& bm : suite) {
            AzulOptions opts = BaseOptions(args);
            opts.sim.sram_latency = lat;
            gflops.push_back(RunConfig(bm.a, bm.b, opts).gflops);
        }
        const double gm = GeoMean(gflops);
        if (lat == 1) {
            base = gm;
        }
        std::printf("%-12d %16.1f %11.1f%%\n", lat, gm,
                    gm / base * 100.0);
    }
    return 0;
}
