/**
 * @file
 * Google-benchmark microbenchmarks of the substrate kernels and the
 * preprocessing pipeline: SpMV, SpTRSV, IC(0), coloring, hypergraph
 * partitioning, and kernel compilation. These measure host wall-clock
 * (not simulated cycles) — the costs a user pays to *prepare* a
 * problem for Azul.
 */
#include <benchmark/benchmark.h>

#include "dataflow/program.h"
#include "mapping/mapper_factory.h"
#include "solver/coloring.h"
#include "solver/ic0.h"
#include "solver/pcg.h"
#include "solver/spmv.h"
#include "solver/sptrsv.h"
#include "sparse/generators.h"
#include "util/rng.h"

namespace azul {
namespace {

CsrMatrix
TestMatrix(std::int64_t n)
{
    return RandomGeometricLaplacian(n, 9.0, 42);
}

Vector
TestVector(Index n)
{
    Rng rng(7);
    Vector v(static_cast<std::size_t>(n));
    for (double& x : v) {
        x = rng.UniformDouble(-1.0, 1.0);
    }
    return v;
}

void
BM_SpMV(benchmark::State& state)
{
    const CsrMatrix a = TestMatrix(state.range(0));
    const Vector x = TestVector(a.rows());
    for (auto _ : state) {
        benchmark::DoNotOptimize(SpMV(a, x));
    }
    state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SpMV)->Arg(1024)->Arg(8192)->Arg(32768);

void
BM_SpTRSVForward(benchmark::State& state)
{
    const CsrMatrix a = TestMatrix(state.range(0));
    const CsrMatrix l = IncompleteCholesky(a);
    const Vector b = TestVector(a.rows());
    for (auto _ : state) {
        benchmark::DoNotOptimize(SpTRSVLower(l, b));
    }
    state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_SpTRSVForward)->Arg(1024)->Arg(8192)->Arg(32768);

void
BM_Ic0Factorization(benchmark::State& state)
{
    const CsrMatrix a = TestMatrix(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(IncompleteCholesky(a));
    }
}
BENCHMARK(BM_Ic0Factorization)->Arg(1024)->Arg(8192);

void
BM_GreedyColoring(benchmark::State& state)
{
    const CsrMatrix a = TestMatrix(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(GreedyColoring(a));
    }
}
BENCHMARK(BM_GreedyColoring)->Arg(1024)->Arg(8192);

void
BM_PcgReferenceIteration(benchmark::State& state)
{
    const CsrMatrix a = TestMatrix(state.range(0));
    const auto m = MakePreconditioner(
        PreconditionerKind::kIncompleteCholesky, a);
    const Vector b = TestVector(a.rows());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            PreconditionedConjugateGradients(a, b, *m, 0.0, 1));
    }
}
BENCHMARK(BM_PcgReferenceIteration)->Arg(1024)->Arg(8192);

void
BM_MapperOnProblem(benchmark::State& state, MapperKind kind)
{
    const CsrMatrix a = TestMatrix(2048);
    const CsrMatrix l = IncompleteCholesky(a);
    MappingProblem prob;
    prob.a = &a;
    prob.l = &l;
    for (auto _ : state) {
        const auto mapper = MakeMapper(kind);
        benchmark::DoNotOptimize(mapper->Map(prob, 64));
    }
}
BENCHMARK_CAPTURE(BM_MapperOnProblem, round_robin,
                  MapperKind::kRoundRobin);
BENCHMARK_CAPTURE(BM_MapperOnProblem, block, MapperKind::kBlock);
BENCHMARK_CAPTURE(BM_MapperOnProblem, sparsep, MapperKind::kSparseP);
BENCHMARK_CAPTURE(BM_MapperOnProblem, azul_hypergraph,
                  MapperKind::kAzul);

void
BM_CompileSolverProgram(benchmark::State& state)
{
    const CsrMatrix a = TestMatrix(2048);
    const CsrMatrix l = IncompleteCholesky(a);
    MappingProblem prob;
    prob.a = &a;
    prob.l = &l;
    const DataMapping mapping =
        MakeMapper(MapperKind::kBlock)->Map(prob, 64);
    ProgramBuildInputs in;
    in.a = &a;
    in.l = &l;
    in.precond = PreconditionerKind::kIncompleteCholesky;
    in.mapping = &mapping;
    in.geom = TorusGeometry{8, 8};
    for (auto _ : state) {
        benchmark::DoNotOptimize(BuildSolverProgram(SolverKind::kPcg, in));
    }
}
BENCHMARK(BM_CompileSolverProgram);

} // namespace
} // namespace azul

BENCHMARK_MAIN();
