/**
 * @file
 * Microbenchmarks of the hot simulation kernels behind the SIMD /
 * arena / gain-bucket optimizations (docs/PERFORMANCE.md):
 *
 *   functional_spmv_replay  FunctionalEngine SpMV tape replay
 *   functional_iteration    one full functional PCG iteration
 *   cycle_spmv              cycle-engine SpMV matrix kernel
 *   cycle_axpy              cycle-engine elementwise axpy sweep
 *   cycle_dot               cycle-engine dot + reduce/broadcast
 *   fm_refine               gain-bucket FM bisection refinement
 *
 * Each kernel reports host nanoseconds per work item (nnz, vector
 * slot, or hypergraph pin) and GFLOP/s where the kernel has a nominal
 * FLOP count. `--json=FILE` writes the same table as JSON for
 * scripts/check_bench_regression.py, which compares a run against the
 * checked-in bench/baseline_micro_kernels.json and exits non-zero on
 * a regression (the perf gate wired into CI's perf-smoke job).
 *
 * Flags: --scale=F --grid=N --threads=N --simd=0|1 --quick
 *        --json=FILE
 * The --simd flag (default: AZUL_SIMD env, else on) pins
 * SimConfig::simd so the scalar fallback can be measured directly.
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dataflow/program.h"
#include "mapping/azul_mapper.h"
#include "mapping/fm_refine.h"
#include "mapping/mapper_factory.h"
#include "sim/engine_functional.h"
#include "sim/machine.h"
#include "solver/coloring.h"
#include "solver/ic0.h"
#include "sparse/generators.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace azul;

namespace {

struct MicroArgs {
    double scale = 1.0;
    std::int32_t grid = 8;
    std::int32_t threads = 0; //!< 0 = resolved from env below
    bool simd = true;
    bool quick = false;
    std::string json_path; //!< empty = no JSON emission

    static MicroArgs
    Parse(int argc, char** argv)
    {
        MicroArgs args;
        args.simd = SimdFromEnv(true);
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--scale=", 0) == 0) {
                args.scale = std::stod(arg.substr(8));
            } else if (arg.rfind("--grid=", 0) == 0) {
                args.grid =
                    static_cast<std::int32_t>(std::stol(arg.substr(7)));
            } else if (arg.rfind("--threads=", 0) == 0) {
                args.threads = static_cast<std::int32_t>(
                    std::stol(arg.substr(10)));
            } else if (arg.rfind("--simd=", 0) == 0) {
                args.simd = std::stol(arg.substr(7)) != 0;
            } else if (arg.rfind("--json=", 0) == 0) {
                args.json_path = arg.substr(7);
            } else if (arg == "--quick") {
                args.quick = true;
                args.scale = 0.1;
                args.grid = 4;
            } else {
                std::fprintf(stderr, "unknown argument '%s'\n",
                             arg.c_str());
                std::exit(2);
            }
        }
        if (args.threads <= 0) {
            args.threads = SimThreadsFromEnv(1);
        }
        return args;
    }
};

double
SecondsSince(const std::chrono::steady_clock::time_point& t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** One measured kernel row. */
struct KernelResult {
    std::string name;
    Index items = 0;       //!< work items per repetition
    long long reps = 0;    //!< measured repetitions
    double ns_per_item = 0.0;
    double gflops = 0.0;   //!< 0 when the kernel has no FLOP count
};

/**
 * Times `run` (a no-argument callable executing one repetition).
 * One untimed warmup repetition first — it records the functional
 * tape / fills kernel caches, so the measurement sees steady state —
 * then enough repetitions to fill a minimum measurement window.
 */
template <typename F>
KernelResult
MeasureKernel(const char* name, Index items, double flops_per_rep,
              bool quick, F&& run)
{
    run(); // warmup: tape recording, cache fills, page faults

    auto t0 = std::chrono::steady_clock::now();
    run();
    const double once = std::max(SecondsSince(t0), 1e-9);

    const double min_window = quick ? 0.02 : 0.25;
    const long long reps = std::clamp<long long>(
        static_cast<long long>(std::ceil(min_window / once)), 1, 5000);

    t0 = std::chrono::steady_clock::now();
    for (long long i = 0; i < reps; ++i) {
        run();
    }
    const double secs = std::max(SecondsSince(t0), 1e-12);

    KernelResult r;
    r.name = name;
    r.items = items;
    r.reps = reps;
    r.ns_per_item = secs * 1e9 /
                    (static_cast<double>(reps) *
                     static_cast<double>(std::max<Index>(items, 1)));
    r.gflops = flops_per_rep <= 0.0
                   ? 0.0
                   : flops_per_rep * static_cast<double>(reps) /
                         secs / 1e9;
    return r;
}

Vector
RandomVec(Index n, std::uint64_t seed)
{
    Rng rng(seed);
    Vector v(static_cast<std::size_t>(n));
    for (double& x : v) {
        x = rng.UniformDouble(-1.0, 1.0);
    }
    return v;
}

void
WriteJson(const std::string& path, const MicroArgs& args,
          const std::vector<KernelResult>& rows)
{
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write --json file '%s'\n",
                     path.c_str());
        std::exit(1);
    }
    std::fprintf(f, "{\n  \"bench\": \"micro_kernels\",\n");
    std::fprintf(f,
                 "  \"config\": {\"scale\": %.6g, \"grid\": %d, "
                 "\"threads\": %d, \"simd\": %s, \"quick\": %s},\n",
                 args.scale, args.grid, args.threads,
                 args.simd ? "true" : "false",
                 args.quick ? "true" : "false");
    std::fprintf(f, "  \"kernels\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const KernelResult& r = rows[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"items\": %lld, "
                     "\"reps\": %lld, \"ns_per_item\": %.6g, "
                     "\"gflops\": %.6g}%s\n",
                     r.name.c_str(), static_cast<long long>(r.items),
                     r.reps, r.ns_per_item, r.gflops,
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char** argv)
{
    const MicroArgs args = MicroArgs::Parse(argc, argv);
    std::printf("==================================================="
                "=========================\n");
    std::printf("micro-kernels: host throughput of the hot "
                "simulation paths\n");
    std::printf("config: scale=%.2f grid=%dx%d host-threads=%d "
                "simd=%d\n",
                args.scale, args.grid, args.grid, args.threads,
                args.simd ? 1 : 0);
    std::printf("---------------------------------------------------"
                "-------------------------\n");

    // ---- Shared problem setup ------------------------------------------
    const Index n = std::max<Index>(
        256, static_cast<Index>(std::lround(32768.0 * args.scale)));
    const CsrMatrix a0 = RandomGeometricLaplacian(n, 9.0, 42);
    const ColoredMatrix cm = ColorAndPermute(a0);
    const CsrMatrix l = IncompleteCholesky(cm.a);
    MappingProblem prob;
    prob.a = &cm.a;
    prob.l = &l;
    const std::int32_t tiles = args.grid * args.grid;
    const DataMapping mapping =
        MakeMapper(MapperKind::kBlock)->Map(prob, tiles);

    ProgramBuildInputs in;
    in.a = &cm.a;
    in.l = &l;
    in.precond = PreconditionerKind::kIncompleteCholesky;
    in.mapping = &mapping;
    in.geom = TorusGeometry{args.grid, args.grid};
    const SolverProgram prog = BuildSolverProgram(SolverKind::kPcg, in);

    SimConfig cfg;
    cfg.grid_width = args.grid;
    cfg.grid_height = args.grid;
    cfg.sim_threads = args.threads;
    cfg.simd = args.simd;

    const Vector b = RandomVec(cm.a.rows(), 0xb0b);
    const Vector p = RandomVec(cm.a.rows(), 0x9e3);
    const double spmv_flops = 2.0 * static_cast<double>(cm.a.nnz());

    std::vector<KernelResult> rows;

    // ---- Functional-engine kernels -------------------------------------
    {
        FunctionalEngine eng(cfg, &prog);
        eng.LoadProblem(b);
        eng.ScatterVector(VecName::kP, p);
        // Kernel 0 of every program is the SpMV A*p. The warmup rep
        // inside MeasureKernel records the tape; the timed reps are
        // pure replay — the serving-path inner loop.
        rows.push_back(MeasureKernel(
            "functional_spmv_replay", cm.a.nnz(), spmv_flops,
            args.quick,
            [&] { eng.RunMatrixKernelStandalone(0); }));
    }
    {
        FunctionalEngine eng(cfg, &prog);
        eng.LoadProblem(b);
        eng.RunPrologue();
        rows.push_back(MeasureKernel(
            "functional_iteration", cm.a.nnz(),
            prog.FlopsPerIteration(), args.quick,
            [&] { eng.RunIteration(); }));
    }

    // ---- Cycle-engine kernels ------------------------------------------
    {
        Machine machine(cfg, &prog);
        machine.LoadProblem(b);
        machine.ScatterVector(VecName::kP, p);
        rows.push_back(MeasureKernel(
            "cycle_spmv", cm.a.nnz(), spmv_flops, args.quick,
            [&] { machine.RunMatrixKernelStandalone(0); }));

        const VectorKernel axpy =
            MakeAxpyConst(VecName::kX, 0.5, VecName::kP);
        rows.push_back(MeasureKernel(
            "cycle_axpy", cm.a.rows(),
            2.0 * static_cast<double>(cm.a.rows()), args.quick,
            [&] { machine.RunVectorKernelForTest(axpy); }));

        const VectorKernel dot =
            MakeDot(ScalarReg::kRr, VecName::kP, VecName::kP);
        rows.push_back(MeasureKernel(
            "cycle_dot", cm.a.rows(),
            2.0 * static_cast<double>(cm.a.rows()), args.quick,
            [&] { machine.RunVectorKernelForTest(dot); }));
    }

    // ---- FM refinement --------------------------------------------------
    {
        const AzulMapper mapper{AzulMapperOptions{}};
        Hypergraph hg = mapper.BuildHypergraph(prob);
        hg.BuildIncidence();
        std::vector<std::int32_t> part0(
            static_cast<std::size_t>(hg.NumVertices()));
        for (std::size_t v = 0; v < part0.size(); ++v) {
            part0[v] = static_cast<std::int32_t>(v & 1);
        }
        BisectionConstraints cons;
        for (int c = 0; c < hg.num_constraints(); ++c) {
            const Weight cap = static_cast<Weight>(
                std::ceil(static_cast<double>(hg.TotalWeight(c)) *
                          0.5 * 1.08));
            cons.max_part0.push_back(cap);
            cons.max_part1.push_back(cap);
        }
        std::vector<std::int32_t> part;
        rows.push_back(MeasureKernel(
            "fm_refine", hg.NumPins(), 0.0, args.quick, [&] {
                part = part0; // each rep refines the same start
                FmRefineBisection(hg, part, cons);
            }));
    }

    // ---- Report ---------------------------------------------------------
    std::printf("%-24s %12s %8s %12s %10s\n", "kernel", "items",
                "reps", "ns/item", "GFLOP/s");
    std::vector<double> ns_values;
    for (const KernelResult& r : rows) {
        ns_values.push_back(r.ns_per_item);
        if (r.gflops > 0.0) {
            std::printf("%-24s %12lld %8lld %12.3f %10.3f\n",
                        r.name.c_str(),
                        static_cast<long long>(r.items), r.reps,
                        r.ns_per_item, r.gflops);
        } else {
            std::printf("%-24s %12lld %8lld %12.3f %10s\n",
                        r.name.c_str(),
                        static_cast<long long>(r.items), r.reps,
                        r.ns_per_item, "-");
        }
    }
    std::printf("\n%-16s gmean = %.4g ns/item\n", "micro-kernels",
                GeoMean(ns_values));

    if (!args.json_path.empty()) {
        WriteJson(args.json_path, args, rows);
        std::printf("json written to %s\n", args.json_path.c_str());
    }
    return 0;
}
