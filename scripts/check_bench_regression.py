#!/usr/bin/env python3
"""Compare a bench_micro_kernels --json run against a baseline.

Usage:
    build/bench/bench_micro_kernels --json=current.json
    python3 scripts/check_bench_regression.py current.json \
        [--baseline bench/baseline_micro_kernels.json] \
        [--threshold 3.0]

Exits non-zero (loudly) when any kernel's ns-per-work-item is more
than `threshold` times its baseline, or when a baseline kernel is
missing from the current run. The default threshold is deliberately
generous: the baseline was recorded on one machine and CI runners
differ in clock speed and cache size, so the gate is meant to catch
algorithmic regressions (an accidentally de-vectorized sweep, a
reintroduced per-call allocation), not single-digit-percent noise.

Speedups are reported but never fail the check; refresh the baseline
with a full-scale run on a quiet machine when the code gets faster
(docs/PERFORMANCE.md, "Updating the baseline").
"""
import argparse
import json
import sys


def load_kernels(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("bench") != "micro_kernels":
        sys.exit(f"{path}: not a bench_micro_kernels JSON file")
    return data, {k["name"]: k for k in data["kernels"]}


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("current", help="JSON from the run under test")
    parser.add_argument("--baseline",
                        default="bench/baseline_micro_kernels.json",
                        help="baseline JSON (default: checked-in)")
    parser.add_argument("--threshold", type=float, default=3.0,
                        help="fail when current/baseline ns-per-item "
                             "exceeds this ratio (default: 3.0)")
    args = parser.parse_args()

    base_data, base = load_kernels(args.baseline)
    cur_data, cur = load_kernels(args.current)

    # Different --scale/--grid presets shift absolute numbers; warn so
    # a --quick run against the full-scale baseline reads as intended.
    for key in ("scale", "grid"):
        if base_data["config"].get(key) != cur_data["config"].get(key):
            print(f"note: config '{key}' differs from baseline "
                  f"({cur_data['config'].get(key)} vs "
                  f"{base_data['config'].get(key)}); ratios compare "
                  "different problem sizes")

    print(f"{'kernel':<24} {'baseline':>12} {'current':>12} "
          f"{'ratio':>8}  verdict (threshold {args.threshold:.2f}x)")
    failures = []
    for name, b in base.items():
        c = cur.get(name)
        if c is None:
            failures.append(f"kernel '{name}' missing from current run")
            print(f"{name:<24} {b['ns_per_item']:>12.3f} "
                  f"{'MISSING':>12} {'-':>8}  FAIL")
            continue
        ratio = c["ns_per_item"] / b["ns_per_item"]
        bad = ratio > args.threshold
        verdict = "REGRESSION" if bad else "ok"
        print(f"{name:<24} {b['ns_per_item']:>12.3f} "
              f"{c['ns_per_item']:>12.3f} {ratio:>7.2f}x  {verdict}")
        if bad:
            failures.append(
                f"kernel '{name}' regressed {ratio:.2f}x "
                f"({b['ns_per_item']:.3f} -> {c['ns_per_item']:.3f} "
                "ns/item)")

    if failures:
        print("\n" + "=" * 64)
        print("PERF REGRESSION DETECTED")
        for f in failures:
            print(f"  - {f}")
        print("If this is expected (e.g. a deliberate accuracy/perf "
              "trade), rerun bench_micro_kernels at full scale on a "
              "quiet machine and refresh "
              "bench/baseline_micro_kernels.json in the same change.")
        print("=" * 64)
        sys.exit(1)
    print("\nall kernels within threshold")


if __name__ == "__main__":
    main()
