#!/usr/bin/env python3
"""Plot a convergence-history CSV produced by `azul_solve --history=F`.

Usage:
    python3 scripts/plot_history.py history.csv [more.csv ...] [-o out.png]

Each CSV has a header line `iteration,residual_norm`. Multiple files are
overlaid (e.g. to compare preconditioners or mappings).
"""
import argparse
import csv
import sys


def read_history(path):
    iterations, residuals = [], []
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            iterations.append(int(row["iteration"]))
            residuals.append(float(row["residual_norm"]))
    return iterations, residuals


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csvs", nargs="+", help="history CSV files")
    parser.add_argument("-o", "--output", default=None,
                        help="write PNG instead of showing a window")
    args = parser.parse_args()

    try:
        import matplotlib
        if args.output:
            matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        # Headless fallback: print a terminal sparkline per file.
        for path in args.csvs:
            its, res = read_history(path)
            print(f"{path}: {len(its)} checks, "
                  f"||r|| {res[0]:.3e} -> {res[-1]:.3e}")
        print("(install matplotlib for plots)", file=sys.stderr)
        return

    fig, ax = plt.subplots(figsize=(7, 4.5))
    for path in args.csvs:
        its, res = read_history(path)
        ax.semilogy(its, res, label=path, linewidth=1.5)
    ax.set_xlabel("PCG iteration")
    ax.set_ylabel("||r||")
    ax.set_title("Azul simulated solve: residual history")
    ax.grid(True, which="both", alpha=0.3)
    ax.legend()
    fig.tight_layout()
    if args.output:
        fig.savefig(args.output, dpi=150)
        print(f"wrote {args.output}")
    else:
        plt.show()


if __name__ == "__main__":
    main()
