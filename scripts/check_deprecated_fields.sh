#!/usr/bin/env bash
# Guards the SolverSpec migration (docs/SOLVERS.md): no in-repo code
# may write the DEPRECATED flat AzulOptions aliases (solver, precond,
# tol, max_iters, jacobi_omega, ssor_omega) — everything goes through
# the nested `spec`. The aliases stay for one release for external
# callers; this check stops them from creeping back in here.
#
# Exemptions:
#   - tests/            exercises the aliases on purpose
#   - core/azul_config.*  defines them
#   - lines tagged `deprecated-alias-shim` (the Create mirror that
#     keeps alias readers working)
#
# Usage: scripts/check_deprecated_fields.sh [repo-root]
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 2

# Flat-alias access looks like `<options-expr>.solver = ...` or
# `opts.tol`, where the receiver is an options-shaped variable. The
# spec fields are accessed as `.spec.solver`-style chains, which the
# negative lookbehind on `spec` excludes.
fields='solver|precond|tol|max_iters|jacobi_omega|ssor_omega'
pattern="\\b(opts|opts_|options|options_|base|o|fo)\\.(${fields})\\b"

matches=$(grep -rnE "$pattern" src bench tools examples \
    --include='*.cc' --include='*.h' --include='*.cpp' \
    | grep -v 'deprecated-alias-shim' \
    | grep -v 'src/core/azul_config\.')

if [ -n "$matches" ]; then
    echo "error: deprecated flat AzulOptions solver fields in use;"
    echo "write the nested SolverSpec (opts.spec.*) instead"
    echo "(docs/SOLVERS.md, 'Migrating from the flat fields'):"
    echo
    echo "$matches"
    exit 1
fi

echo "ok: no deprecated flat solver-field use outside tests/"
exit 0
